//! Use Case 2 follow-through (§V-D): the paper argues MCCM's fine-grained
//! breakdowns let a designer apply weight compression *only where it
//! attacks a bottleneck*, keeping decompression overhead minimal. This
//! experiment quantifies that on the paper's own example — SegmentedRR
//! with 2 CEs, ResNet-50 on the bandwidth-starved ZC706 — comparing no
//! compression, targeted compression of the memory-bound segments' layers,
//! and blanket compression of every layer.

use mccm_arch::{templates, BuiltAccelerator, MultipleCeBuilder};
use mccm_cnn::zoo;
use mccm_core::{CostModel, Evaluation};
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::mib;

/// 2× weight compression (a conservative sparsity/encoding ratio).
const RATIO: f64 = 0.5;

fn row(t: &mut Table, name: &str, layers_touched: usize, e: &Evaluation) {
    t.row(vec![
        name.to_string(),
        layers_touched.to_string(),
        format!("{:.1}", e.latency_ms()),
        format!("{:.1}", e.throughput_fps),
        format!("{:.1}", mib(e.offchip_bytes)),
        format!("{:.0}%", 100.0 * e.memory_stall_fraction),
    ]);
}

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let builder = MultipleCeBuilder::new(&model, &board);
    let acc: BuiltAccelerator = builder
        .build(&templates::segmented_rr(&model, 2).unwrap())
        .unwrap();
    let base = CostModel::evaluate(&acc);

    // Targeted: only layers of memory-bound segments (what Fig. 6a points
    // a designer at).
    let targeted_layers: Vec<usize> = base
        .segments
        .iter()
        .filter(|s| s.memory_s > s.compute_s)
        .flat_map(|s| s.first..=s.last)
        .collect();
    let acc_targeted = acc.clone().with_weight_compression(&targeted_layers, RATIO);
    let targeted = CostModel::evaluate(&acc_targeted);

    // Blanket: everything.
    let all_layers: Vec<usize> = (0..acc.convs.len()).collect();
    let acc_blanket = acc.clone().with_weight_compression(&all_layers, RATIO);
    let blanket = CostModel::evaluate(&acc_blanket);

    let mut report = Report::new(
        "compression",
        "Targeted vs blanket 2x weight compression, SegmentedRR-2, ResNet-50 on ZC706",
    );
    let mut t = Table::new(
        "comparison",
        &[
            "scheme",
            "layers compressed",
            "latency (ms)",
            "FPS",
            "accesses (MiB)",
            "stalls",
        ],
    );
    row(&mut t, "none", 0, &base);
    row(
        &mut t,
        "targeted (memory-bound segments)",
        targeted_layers.len(),
        &targeted,
    );
    row(&mut t, "blanket (all layers)", all_layers.len(), &blanket);
    report.tables.push(t);

    let gain = |e: &Evaluation| base.latency_s - e.latency_s;
    let captured = if gain(&blanket) > 0.0 {
        gain(&targeted) / gain(&blanket)
    } else {
        1.0
    };
    report.note(format!(
        "Targeted compression touches {}/{} layers yet captures {:.0}% of the blanket \
         scheme's latency gain — the selective-optimization story of §V-D.",
        targeted_layers.len(),
        all_layers.len(),
        100.0 * captured
    ));
    report.note(format!(
        "Off-chip traffic: {:.1} -> {:.1} (targeted) -> {:.1} MiB (blanket).",
        mib(base.offchip_bytes),
        mib(targeted.offchip_bytes),
        mib(blanket.offchip_bytes)
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn targeted_compression_captures_most_of_the_gain() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 3);
        let lat = |i: usize| -> f64 { r.tables[0].rows[i][2].parse().unwrap() };
        // none >= targeted >= blanket.
        assert!(lat(0) >= lat(1));
        assert!(lat(1) >= lat(2));
        // Targeted must produce a real improvement on this memory-bound
        // design.
        assert!(lat(0) - lat(1) > 0.02 * lat(0), "targeted gain too small");
    }
}
