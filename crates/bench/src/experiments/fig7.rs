//! Fig. 7: off-chip access breakdown (weights vs FMs) of the highest-
//! throughput instance of each architecture, ResNet-50 on ZC706 — the
//! compression-targeting analysis of Use Case 2.

use mccm_arch::templates::Architecture;
use mccm_cnn::zoo;
use mccm_core::Metric;
use mccm_fpga::FpgaBoard;

use crate::output::{Report, Table};
use crate::setups::{baseline_sweep, best_instance, mib};

/// Runs the experiment.
pub fn run() -> Report {
    let model = zoo::resnet50();
    let board = FpgaBoard::zc706();
    let sweep = baseline_sweep(&model, &board);

    let mut report = Report::new(
        "fig7",
        "Off-chip access breakdown (weights vs FMs), best-throughput instances, ResNet-50 on ZC706",
    );
    let mut t = Table::new(
        "breakdown",
        &[
            "architecture",
            "CEs",
            "weights (MiB)",
            "FMs (MiB)",
            "weights share",
        ],
    );
    let mut shares = Vec::new();
    for arch in [
        Architecture::SegmentedRr,
        Architecture::Segmented,
        Architecture::Hybrid,
    ] {
        let p = best_instance(&sweep, arch, Metric::Throughput).unwrap();
        let share = p.eval.weight_traffic_share();
        shares.push((arch, share));
        t.row(vec![
            arch.name().to_string(),
            p.ces.to_string(),
            format!("{:.1}", mib(p.eval.offchip_weight_bytes)),
            format!("{:.1}", mib(p.eval.offchip_fm_bytes)),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    report.tables.push(t);

    report.note(
        "Paper: weights dominate SegmentedRR and Hybrid accesses (compressing FMs there would be \
         pure overhead), while Segmented splits more evenly."
            .to_string(),
    );
    for (arch, share) in shares {
        if arch != Architecture::Segmented {
            report.note(format!(
                "{}: weights share {:.0}% ({})",
                arch.name(),
                100.0 * share,
                if share > 0.5 {
                    "weights-dominated, as in the paper"
                } else {
                    "FM-dominated"
                }
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn three_instances_with_split() {
        let r = super::run();
        assert_eq!(r.tables[0].rows.len(), 3);
        // Hybrid is weights-dominated (its FM traffic is just model I/O).
        let hybrid = &r.tables[0].rows[2];
        let share: f64 = hybrid[4].trim_end_matches('%').parse().unwrap();
        assert!(share > 50.0, "hybrid weights share {share}%");
    }
}
