//! Experiment harness of the MCCM reproduction: regenerates every table
//! and figure of the paper's evaluation (§V) and measures the speed
//! claims.
//!
//! Each experiment lives in [`experiments`] and is wrapped by a binary of
//! the same name (`cargo run --release -p mccm-bench --bin table4`);
//! `--bin all` runs the full evaluation and writes CSVs under `results/`.

pub mod experiments;
mod output;
pub mod setups;

pub use output::{emit, results_dir, Report, Table};

/// Parses `--samples N` / `--seed N` style flags from `std::env::args`.
pub fn arg_value(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}
