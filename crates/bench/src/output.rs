//! Report/table plumbing shared by every experiment binary.

use std::fmt;
use std::fs;
use std::path::PathBuf;

/// A printable, CSV-exportable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// File stem for CSV export.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "table {}", self.name);
        self.rows.push(cells);
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// A full experiment report: tables plus free-form findings.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. `"table4"`, `"fig10"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables, printed and exported in order.
    pub tables: Vec<Table>,
    /// Findings/notes printed after the tables (paper-vs-measured etc.).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

/// Directory for CSV exports (`$MCCM_RESULTS_DIR` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("MCCM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Prints a report to stdout and writes its tables as CSVs under
/// [`results_dir`]. Used by every experiment binary.
pub fn emit(report: &Report) {
    println!("== {} — {} ==\n", report.id, report.title);
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    for table in &report.tables {
        println!("{table}");
        let path = dir.join(format!("{}_{}.csv", report.id, table.name));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[csv] {}\n", path.display());
        }
    }
    for note in &report.notes {
        println!("* {note}");
    }
    if !report.notes.is_empty() {
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("t", &["metric", "v"]);
        t.row(vec!["latency".into(), "1".into()]);
        t.row(vec!["x".into(), "22".into()]);
        let text = t.to_string();
        assert!(text.contains("metric"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn report_collects_notes() {
        let mut r = Report::new("x", "t");
        r.note("hello");
        assert_eq!(r.notes.len(), 1);
    }
}
