//! Shared experiment setups: the paper's boards, CNNs, CE range, and
//! instance-selection helpers.

use mccm_arch::templates::Architecture;
use mccm_cnn::{zoo, CnnModel};
use mccm_core::Metric;
use mccm_dse::{BaselinePoint, Explorer};
use mccm_fpga::FpgaBoard;

/// The paper's CE-count sweep (§V-A3): 2 through 11 CEs.
pub const CE_RANGE: std::ops::RangeInclusive<usize> = 2..=11;

/// The five evaluation CNNs in Table III order.
pub fn models() -> Vec<CnnModel> {
    zoo::all_models()
}

/// The four evaluation boards in Table II order.
pub fn boards() -> Vec<FpgaBoard> {
    FpgaBoard::evaluation_boards()
}

/// Sweeps the three baselines over the CE range for one (CNN, board) pair.
///
/// # Panics
///
/// On real builder faults (anything other than infeasible instances);
/// the experiment harness treats those as bugs, not data.
pub fn baseline_sweep(model: &CnnModel, board: &FpgaBoard) -> Vec<BaselinePoint> {
    Explorer::new(model, board)
        .sweep_baselines(CE_RANGE)
        .expect("baseline sweep hit a builder fault")
}

/// The best instance of one architecture under a metric: `(ces, point)`.
pub fn best_instance(
    sweep: &[BaselinePoint],
    arch: Architecture,
    metric: Metric,
) -> Option<&BaselinePoint> {
    sweep
        .iter()
        .filter(|p| p.architecture == arch)
        .reduce(|a, b| {
            if metric.better(metric.value(&b.eval), metric.value(&a.eval)) {
                b
            } else {
                a
            }
        })
}

/// Architecture initial used in compact grids (`S` / `R` / `H`).
pub fn arch_initial(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Segmented => "S",
        Architecture::SegmentedRr => "R",
        Architecture::Hybrid => "H",
    }
}

/// Bytes → MiB.
pub fn mib(bytes: mccm_core::Bytes) -> f64 {
    bytes.mib()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_and_best_instance() {
        let m = zoo::mobilenet_v2();
        let sweep = baseline_sweep(&m, &FpgaBoard::zc706());
        assert_eq!(sweep.len(), 30);
        let best = best_instance(&sweep, Architecture::Hybrid, Metric::Throughput).unwrap();
        assert_eq!(best.architecture, Architecture::Hybrid);
        // It really is the max-throughput hybrid.
        for p in sweep
            .iter()
            .filter(|p| p.architecture == Architecture::Hybrid)
        {
            assert!(best.eval.throughput_fps >= p.eval.throughput_fps);
        }
    }

    #[test]
    fn initials_unique() {
        let set: std::collections::HashSet<_> =
            Architecture::ALL.iter().map(|&a| arch_initial(a)).collect();
        assert_eq!(set.len(), 3);
    }
}
