//! Compares guided (NSGA-II island) and random exploration at equal
//! evaluation budget on Xception/VCU110 and records the front-quality
//! trajectory: `BENCH_guided.json` at the repo root (override the path
//! with `MCCM_BENCH_GUIDED_JSON`). Accepts `--budget N` (default 4000),
//! `--seed N` (default 42), and `--workers N` (default 0 = one per core).
//!
//! ```text
//! cargo run --release -p mccm-bench --bin guided -- --budget 4000
//! ```
fn main() {
    let budget = mccm_bench::arg_value("--budget", 4000);
    let seed = mccm_bench::arg_value("--seed", 42);
    let workers = mccm_bench::arg_value("--workers", 0) as usize;
    let measured = mccm_bench::experiments::guided::measure(budget, seed, workers);
    mccm_bench::emit(&measured.report());
    let path = std::env::var_os("MCCM_BENCH_GUIDED_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_guided.json"));
    match std::fs::write(&path, measured.to_json()) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
