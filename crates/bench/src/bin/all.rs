//! Runs the complete evaluation: every table and figure in order, writing
//! CSVs under `results/`. Use `--release`; `--samples N` scales Fig. 10.
fn main() {
    use mccm_bench::experiments as e;
    let samples = mccm_bench::arg_value("--samples", 20_000) as usize;
    let seed = mccm_bench::arg_value("--seed", 1);
    let workers = mccm_bench::arg_value("--workers", 0) as usize;
    for report in [
        e::table2::run(),
        e::table3::run(),
        e::table1::run(),
        e::table4::run(),
        e::table5::run(),
        e::fig5::run(),
        e::fig6::run(),
        e::fig7::run(),
        e::fig8::run(),
        e::fig9::run(),
        e::fig10::run(samples, seed, workers),
        e::speed::run(200),
        e::ablation::run(),
        e::compression::run(),
    ] {
        mccm_bench::emit(&report);
    }
}
