//! Regenerates Table V (best architectures grid). Use `--release`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::table5::run());
}
