//! Regenerates the paper's fig9. See `mccm_bench::experiments::fig9`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::fig9::run());
}
