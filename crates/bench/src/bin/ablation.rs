//! Runs the design-choice ablation studies (DESIGN.md §2).
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::ablation::run());
}
