//! Regenerates the paper's table3. See `mccm_bench::experiments::table3`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::table3::run());
}
