//! Regenerates the paper's table1. See `mccm_bench::experiments::table1`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::table1::run());
}
