//! Regenerates the paper's fig8. See `mccm_bench::experiments::fig8`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::fig8::run());
}
