//! Regenerates the paper's fig6. See `mccm_bench::experiments::fig6`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::fig6::run());
}
