//! Regenerates Fig. 10 (design-space exploration). Accepts `--samples N`
//! (default 20000; the paper uses 100000), `--seed N`, and `--workers N`
//! (default 0 = one per core).
fn main() {
    let samples = mccm_bench::arg_value("--samples", 20_000) as usize;
    let seed = mccm_bench::arg_value("--seed", 1);
    let workers = mccm_bench::arg_value("--workers", 0) as usize;
    mccm_bench::emit(&mccm_bench::experiments::fig10::run(samples, seed, workers));
}
