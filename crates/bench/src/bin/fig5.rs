//! Regenerates the paper's fig5. See `mccm_bench::experiments::fig5`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::fig5::run());
}
