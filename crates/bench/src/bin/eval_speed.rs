//! Measures DSE sweep throughput on both evaluation lanes and records the
//! perf trajectory: `BENCH_eval.json` at the repo root (override the path
//! with `MCCM_BENCH_JSON`). Accepts `--designs N` (default 2000) and
//! `--seed N` (default 42).
//!
//! ```text
//! cargo run --release -p mccm-bench --bin eval_speed -- --designs 2000
//! ```
fn main() {
    let designs = mccm_bench::arg_value("--designs", 2000) as usize;
    let seed = mccm_bench::arg_value("--seed", 42);
    let measured = mccm_bench::experiments::eval_speed::measure(designs, seed);
    mccm_bench::emit(&measured.report());
    let path = std::env::var_os("MCCM_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_eval.json"));
    match std::fs::write(&path, measured.to_json()) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
