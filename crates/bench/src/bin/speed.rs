//! Measures the evaluation-speed claims. Accepts `--reps N` (default 200).
fn main() {
    let reps = mccm_bench::arg_value("--reps", 200) as usize;
    mccm_bench::emit(&mccm_bench::experiments::speed::run(reps));
}
