//! Runs the targeted-compression study (Use Case 2 follow-through, §V-D).
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::compression::run());
}
