//! Regenerates the paper's fig7. See `mccm_bench::experiments::fig7`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::fig7::run());
}
