//! Regenerates the paper's table2. See `mccm_bench::experiments::table2`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::table2::run());
}
