//! Regenerates Table IV (150-experiment validation). Use `--release`.
fn main() {
    mccm_bench::emit(&mccm_bench::experiments::table4::run());
}
