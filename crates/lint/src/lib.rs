//! Hand-rolled conformance lints for the MCCM workspace.
//!
//! `cargo run -p mccm-lint` statically scans the workspace's own source
//! (never its dependencies — there are none) for conformance violations
//! that `rustc` and clippy cannot express because they are *project*
//! rules, not language rules:
//!
//! - **raw-quantity-field** — a public field of an `mccm_core` struct
//!   holding a dimensioned quantity (`*_bytes`, `*_cycles`, `*_macs`, …)
//!   as a raw `u64`/`f64` instead of the typed newtypes from
//!   `mccm_core::quantity`. The whole point of the quantity layer is
//!   that these cannot reappear silently.
//! - **ok-swallow** — `.ok()` used to discard a builder `Result`. The
//!   build path reports real errors (`ArchError`); swallowing one turns
//!   an infeasible design into a silent skip.
//! - **wall-clock** — `Instant`/`SystemTime` in deterministic-output
//!   paths. Model outputs must be a pure function of their inputs; wall
//!   time may only be read by explicitly allowlisted measurement code
//!   (DSE time budgets, speed benchmarks).
//! - **debug-print** — stray `dbg!`/`println!`/`eprintln!` in library
//!   code. Libraries return data; binaries print.
//! - **schedule-match** — naming a `BlockSpec`/`Schedule` enum *variant*
//!   outside `crates/core/src/model/`. Schedule dispatch is the cost
//!   model's job; a call site that matches on `Schedule::DepthFirst` or
//!   `BlockSpec::Pipelined` is re-deriving evaluation semantics the core
//!   already owns. Legitimate sites (the defining crate, the notation
//!   parser, the search space) are allowlisted one by one.
//! - **segment-cache-key** — constructing a segment-cache or design-memo
//!   key variant (`SegKey::…`, `DesignKey::Packed`/`Big`) outside
//!   `crates/dse/src/segcache.rs`. A key encodes exactly which inputs a
//!   cached cost depends on; a second construction site could omit a
//!   dependency and silently alias cache entries, so the delta-evaluation
//!   module is the sole sanctioned home (other code goes through
//!   `DesignKey::of` and the cache API).
//! - **no-panic-serve** — panicking constructs (`.unwrap()`, `.expect(`,
//!   `panic!`, `unreachable!`, `todo!`, literal-index expressions) in
//!   `src/serve/`. The daemon's availability contract is that a request
//!   can fail but the process cannot: request paths must turn every
//!   error into a typed protocol response, so the `catch_unwind`
//!   isolation layer stays a last resort instead of a control-flow
//!   mechanism. The fault-injection module's deliberate panic site is
//!   the sole allowlisted exception.
//! - **calib-store** — calibration-store I/O (`CalibStore::load*`,
//!   `.save(`) or correction fitting (`Correction::fit`,
//!   `fit_corrections`) outside `crates/calib/src/`. The store's byte
//!   format and the fit's float arithmetic are the calibration crate's
//!   determinism contract; a second site reading the file or refitting
//!   corrections could diverge from it silently. The facade's calibrate
//!   action is the one allowlisted consumer.
//!
//! The scan is line-based and intentionally simple (in the offline,
//! no-dependency style of `mccm::json`): comments are skipped, the
//! trailing `#[cfg(test)]` module of a file is ignored, and anything the
//! rules overmatch is silenced through the checked-in allowlist file
//! (`lint-allow.txt` at the workspace root) rather than through code
//! contortions — every exception stays visible and reviewable.

use std::fmt;
use std::path::{Path, PathBuf};

/// The conformance rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Raw `u64`/`f64` public field with a quantity-suffixed name in
    /// `mccm_core` (outside the quantity module itself).
    RawQuantityField,
    /// `.ok()` discarding a builder `Result`.
    OkSwallow,
    /// Wall-clock reads (`Instant`, `SystemTime`, `std::time`) outside
    /// allowlisted measurement code.
    WallClock,
    /// `dbg!`/`println!`/`eprintln!` in library code.
    DebugPrint,
    /// `BlockSpec`/`Schedule` variant dispatch outside the core model.
    ScheduleMatch,
    /// Segment-cache/design-memo key variants constructed outside the
    /// delta-evaluation module.
    SegmentCacheKey,
    /// Panicking constructs (`unwrap`, `expect`, panic-family macros,
    /// literal indexing) inside the serve layer.
    NoPanicServe,
    /// Calibration-store I/O or correction fitting outside the
    /// calibration crate.
    CalibStore,
}

impl Rule {
    /// Stable kebab-case name, used in diagnostics and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Self::RawQuantityField => "raw-quantity-field",
            Self::OkSwallow => "ok-swallow",
            Self::WallClock => "wall-clock",
            Self::DebugPrint => "debug-print",
            Self::ScheduleMatch => "schedule-match",
            Self::SegmentCacheKey => "segment-cache-key",
            Self::NoPanicServe => "no-panic-serve",
            Self::CalibStore => "calib-store",
        }
    }

    /// Parses a rule name from the allowlist.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "raw-quantity-field" => Some(Self::RawQuantityField),
            "ok-swallow" => Some(Self::OkSwallow),
            "wall-clock" => Some(Self::WallClock),
            "debug-print" => Some(Self::DebugPrint),
            "schedule-match" => Some(Self::ScheduleMatch),
            "segment-cache-key" => Some(Self::SegmentCacheKey),
            "no-panic-serve" => Some(Self::NoPanicServe),
            "calib-store" => Some(Self::CalibStore),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation: rule, workspace-relative path, 1-based line, and the
/// offending line's trimmed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line, for the diagnostic.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Field-name suffixes that denote a counted quantity. A public raw
/// `u64`/`f64` field with one of these suffixes in `mccm_core` should be
/// a `mccm_core::quantity` newtype instead.
const QUANTITY_SUFFIXES: &[&str] = &[
    "_bytes", "_cycles", "_macs", "_traffic", "_pes", "_joules", "_j",
];

/// Wall-clock tokens. `Instant` alone would also match the word
/// "Instantiates" in prose and identifiers, so match only usages that
/// are unambiguously the std type.
const WALL_CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime", "std::time::"];

/// Print macros banned from library code.
const PRINT_TOKENS: &[&str] = &["dbg!(", "println!(", "eprintln!("];

/// Variant-level schedule/block dispatch. Naming one of these outside
/// the core model means a call site is re-deriving evaluation semantics
/// (which layers fuse, what a pipelined block may carry) that the
/// schedule-dispatched core already owns.
const SCHEDULE_TOKENS: &[&str] = &[
    "Schedule::LayerByLayer",
    "Schedule::DepthFirst",
    "BlockSpec::Single",
    "BlockSpec::Pipelined",
];

/// Cache-key variant constructors. `DesignKey::of` (the sanctioned
/// constructor other modules call) is deliberately absent: the rule
/// confines knowledge of what a key *contains*, not use of keys.
const SEGMENT_KEY_TOKENS: &[&str] = &[
    "SegKey::Single",
    "SegKey::Pipe",
    "DesignKey::Packed",
    "DesignKey::Big",
];

/// Panicking constructs banned from the serve layer. `.unwrap()` is
/// matched exactly so the panic-free alternatives
/// (`.unwrap_or`, `.unwrap_or_else(PoisonError::into_inner)`, …) pass.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Calibration-store I/O and correction-fit entry points.
/// `CalibStore::load` also matches `load_or_empty`; `.save(` is the
/// method-call form of store persistence (no other workspace type has a
/// `save` method, and an overmatch would land in the reviewable
/// allowlist anyway).
const CALIB_STORE_TOKENS: &[&str] = &[
    "CalibStore::load",
    "CalibStore::save",
    ".save(",
    "Correction::fit",
    "fit_corrections(",
];

/// Whether `rule` applies to the file at `path` (workspace-relative).
fn rule_applies(rule: Rule, path: &str) -> bool {
    match rule {
        // The typed-field guarantee is a contract of the core model's
        // public structs; other crates (e.g. the simulator's raw
        // measurement results) may keep raw integers at their edges.
        Rule::RawQuantityField => path.starts_with("crates/core/src/"),
        Rule::OkSwallow => {
            path.starts_with("crates/core/src/")
                || path.starts_with("crates/arch/src/")
                || path.starts_with("crates/dse/src/")
                || path.starts_with("src/")
        }
        Rule::WallClock => true,
        // Library code only: binaries and the facade CLI print by design.
        Rule::DebugPrint => {
            path.starts_with("crates/") && path.contains("/src/") && !path.contains("/bin/")
        }
        // Schedule dispatch belongs to the core model; everywhere else
        // must justify a variant-level match in the allowlist.
        Rule::ScheduleMatch => !path.starts_with("crates/core/src/model/"),
        // Key layout knowledge is confined to the delta-evaluation
        // module; no allowlist entries expected, ever.
        Rule::SegmentCacheKey => path != "crates/dse/src/segcache.rs",
        // The availability contract is the daemon's alone; library and
        // CLI code elsewhere may still use `unwrap` on invariants.
        Rule::NoPanicServe => path.starts_with("src/serve/"),
        // Store bytes and fit arithmetic are the calibration crate's
        // contract; consumers elsewhere must be allowlisted one by one.
        Rule::CalibStore => !path.starts_with("crates/calib/src/"),
    }
}

/// Scans one source file. `path` must be workspace-relative with `/`
/// separators; it selects which rules apply.
///
/// The scanner is line-based: comment lines are skipped, and everything
/// from the first `#[cfg(test)]` on is ignored (by repo convention the
/// test module is the last item of a file — test code may print, measure
/// time, and build throwaway structs freely).
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_pub_struct = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("#[cfg(test)]") {
            break;
        }
        if line.starts_with("//") {
            continue;
        }
        let push = |findings: &mut Vec<Finding>, rule: Rule| {
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line: idx + 1,
                excerpt: line.to_string(),
            });
        };

        // raw-quantity-field: track `pub struct` bodies, flag raw fields.
        if rule_applies(Rule::RawQuantityField, path) {
            if line.starts_with("pub struct ") {
                in_pub_struct = line.ends_with('{');
            } else if in_pub_struct && line == "}" {
                in_pub_struct = false;
            } else if in_pub_struct && is_raw_quantity_field(line) {
                push(&mut findings, Rule::RawQuantityField);
            }
        }

        if rule_applies(Rule::OkSwallow, path) && is_ok_swallow(line) {
            push(&mut findings, Rule::OkSwallow);
        }
        if rule_applies(Rule::WallClock, path) && WALL_CLOCK_TOKENS.iter().any(|t| line.contains(t))
        {
            push(&mut findings, Rule::WallClock);
        }
        if rule_applies(Rule::DebugPrint, path) && PRINT_TOKENS.iter().any(|t| line.contains(t)) {
            push(&mut findings, Rule::DebugPrint);
        }
        if rule_applies(Rule::ScheduleMatch, path)
            && SCHEDULE_TOKENS.iter().any(|t| line.contains(t))
        {
            push(&mut findings, Rule::ScheduleMatch);
        }
        if rule_applies(Rule::SegmentCacheKey, path)
            && SEGMENT_KEY_TOKENS.iter().any(|t| line.contains(t))
        {
            push(&mut findings, Rule::SegmentCacheKey);
        }
        if rule_applies(Rule::NoPanicServe, path)
            && (PANIC_TOKENS.iter().any(|t| line.contains(t)) || has_literal_index(line))
        {
            push(&mut findings, Rule::NoPanicServe);
        }
        if rule_applies(Rule::CalibStore, path)
            && CALIB_STORE_TOKENS.iter().any(|t| line.contains(t))
        {
            push(&mut findings, Rule::CalibStore);
        }
    }
    findings
}

/// A literal-index expression like `parts[0]` or `bytes()[12]`: a `[`
/// directly following an expression (identifier, `)`, or `]`) whose
/// bracketed content is all digits. Array types (`[u16; 4]`), array
/// literals (`[0u8; 4]`), and attributes (`#[...]`) never match because
/// nothing indexable precedes their `[`.
fn has_literal_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        let indexable =
            prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !indexable {
            continue;
        }
        let rest = &bytes[i + 1..];
        let Some(close) = rest.iter().position(|&c| c == b']') else {
            continue;
        };
        if close > 0 && rest[..close].iter().all(u8::is_ascii_digit) {
            return true;
        }
    }
    false
}

/// `pub name: u64,` / `pub name: f64,` with a quantity-suffixed name.
fn is_raw_quantity_field(line: &str) -> bool {
    let Some(rest) = line.strip_prefix("pub ") else {
        return false;
    };
    let Some((name, ty)) = rest.split_once(':') else {
        return false;
    };
    let name = name.trim();
    let ty = ty.trim().trim_end_matches(',');
    (ty == "u64" || ty == "f64") && QUANTITY_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// `.ok()` that discards an error: either a bare `.ok();` statement or
/// `.ok()` directly on a builder call. Chained uses that go on to
/// inspect the value (`.ok()?`, `.ok().map(...)`) are left alone.
fn is_ok_swallow(line: &str) -> bool {
    line.ends_with(".ok();") || (line.contains(".ok()") && line.contains("build("))
}

/// One allowlist entry: suppress `rule` findings in files whose path
/// starts with `path_prefix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The suppressed rule.
    pub rule: Rule,
    /// Workspace-relative path prefix.
    pub path_prefix: String,
}

/// Parses the allowlist file: one `rule path-prefix` pair per line,
/// `#`-comments and blank lines ignored. Unknown rule names are errors —
/// a typo must not silently allow nothing.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(prefix), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `rule path-prefix`",
                idx + 1
            ));
        };
        let Some(rule) = Rule::parse(rule) else {
            return Err(format!("allowlist line {}: unknown rule `{rule}`", idx + 1));
        };
        entries.push(AllowEntry {
            rule,
            path_prefix: prefix.to_string(),
        });
    }
    Ok(entries)
}

/// Whether `finding` is suppressed by the allowlist.
pub fn is_allowed(finding: &Finding, allow: &[AllowEntry]) -> bool {
    allow
        .iter()
        .any(|e| e.rule == finding.rule && finding.path.starts_with(&e.path_prefix))
}

/// Collects the workspace-relative paths of all `.rs` files the scan
/// covers: `src/` and every `crates/*/src/`, except this lint crate
/// itself (its source spells out the banned tokens) and `vendor/` (the
/// offline dependency stand-ins are not model code).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path();
        if dir.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        collect_rs(&dir.join("src"), &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full scan over a workspace: reads every covered source file,
/// applies the rules, and filters through the allowlist. Findings come
/// back sorted by path and line for deterministic output.
pub fn scan_workspace(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .expect("workspace files live under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        findings.extend(
            scan_source(&rel, &source)
                .into_iter()
                .filter(|f| !is_allowed(f, allow)),
        );
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_quantity_fields_flagged_in_core_only() {
        let src = "pub struct Report {\n    pub offchip_bytes: u64,\n    pub latency_s: f64,\n}\n";
        let hits = scan_source("crates/core/src/report.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::RawQuantityField);
        assert_eq!(hits[0].line, 2);
        // Same text elsewhere is fine: the contract is core's.
        assert!(scan_source("crates/sim/src/result.rs", src).is_empty());
    }

    #[test]
    fn typed_fields_pass() {
        let src =
            "pub struct Report {\n    pub offchip_bytes: Bytes,\n    pub total_macs: Macs,\n}\n";
        assert!(scan_source("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn ok_swallow_on_build_flagged_chains_pass() {
        let bad = "    let acc = builder.build(&spec).ok();\n";
        let hits = scan_source("crates/dse/src/explorer.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::OkSwallow);
        let fine = "    let n = u128::try_from(x).ok()?;\n";
        assert!(scan_source("crates/dse/src/space.rs", fine).is_empty());
    }

    #[test]
    fn wall_clock_flagged_but_not_prose() {
        let bad = "    let t0 = Instant::now();\n";
        assert_eq!(scan_source("crates/core/src/model/mod.rs", bad).len(), 1);
        // "Instantiates" in a doc comment or identifier must not match.
        let fine = "/// Instantiates this architecture.\nfn instantiate() {}\n";
        assert!(scan_source("crates/arch/src/templates.rs", fine).is_empty());
    }

    #[test]
    fn prints_flagged_in_libs_not_bins_or_tests() {
        let src = "fn f() {\n    println!(\"x\");\n}\n";
        assert_eq!(scan_source("crates/core/src/model/mod.rs", src).len(), 1);
        assert!(scan_source("crates/bench/src/bin/fig5.rs", src).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    println!(\"x\");\n}\n";
        assert!(scan_source("crates/core/src/model/mod.rs", test_only).is_empty());
    }

    #[test]
    fn schedule_dispatch_flagged_outside_the_core_model() {
        let src =
            "    if matches!(a.schedule, Schedule::DepthFirst { .. }) {\n        todo!()\n    }\n";
        let hits = scan_source("crates/dse/src/explorer.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::ScheduleMatch);
        // The schedule-dispatched evaluation core is the one legitimate home.
        assert!(scan_source("crates/core/src/model/single_ce.rs", src).is_empty());
        // Naming the type without a variant is fine anywhere.
        let fine = "    pub schedule: Schedule,\n";
        assert!(scan_source("crates/dse/src/space.rs", fine).is_empty());
        // Block variants count too.
        let block = "    let BlockSpec::Pipelined { first_ce, .. } = a.block else { return };\n";
        assert_eq!(
            scan_source("src/session.rs", block)[0].rule,
            Rule::ScheduleMatch
        );
    }

    #[test]
    fn segment_key_construction_flagged_outside_segcache() {
        let cases = [
            "    let key = SegKey::Single { first, len, pes, schedule, bytes, input_off, output_off };\n",
            "    cache.keys.push(SegKey::Pipe { len: h, stages, output_off });\n",
            "    let k = DesignKey::Packed(bits);\n",
            "    return DesignKey::Big(Box::new(design.clone()));\n",
        ];
        for src in cases {
            let hits = scan_source("crates/dse/src/optimizer.rs", src);
            assert_eq!(hits.len(), 1, "{src:?}");
            assert_eq!(hits[0].rule, Rule::SegmentCacheKey, "{src:?}");
            // The defining module is the one sanctioned home.
            assert!(
                scan_source("crates/dse/src/segcache.rs", src).is_empty(),
                "{src:?}"
            );
        }
        // Going through the sanctioned constructor is fine anywhere.
        let fine = "    let key = DesignKey::of(design);\n";
        assert!(scan_source("crates/dse/src/optimizer.rs", fine).is_empty());
    }

    #[test]
    fn panicking_constructs_flagged_in_serve_only() {
        let cases = [
            "    let job = queue.pop_front().unwrap();\n",
            "    let addr = listener.local_addr().expect(\"bound\");\n",
            "    panic!(\"unreachable state\");\n",
            "    _ => unreachable!(\"checked above\"),\n",
            "    todo!(\"deadline handling\")\n",
            "    let first = shards[0];\n",
            "    let tail = splits()[12];\n",
        ];
        for src in cases {
            let hits = scan_source("src/serve/daemon.rs", src);
            assert_eq!(hits.len(), 1, "{src:?}");
            assert_eq!(hits[0].rule, Rule::NoPanicServe, "{src:?}");
            // The same text outside the serve layer is not this rule's
            // business.
            assert!(scan_source("src/cli.rs", src).is_empty(), "{src:?}");
        }
    }

    #[test]
    fn panic_free_serve_idioms_pass() {
        let fine = [
            // The sanctioned poison-clearing lock idiom.
            "    let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);\n",
            "    let value = map.get(key).unwrap_or(&0);\n",
            // Array types and literals are not index expressions.
            "    rates: [u16; 4],\n",
            "    let zeroes = [0u8; 4];\n",
            "    #[derive(Debug)]\n",
            // Variable and expression indices are bounds-checked by the
            // scanner's human reviewer, not this rule.
            "    let rate = self.rates[site.index()];\n",
        ];
        for src in fine {
            assert!(
                scan_source("src/serve/daemon.rs", src).is_empty(),
                "{src:?}"
            );
        }
        // Test modules panic freely.
        let test_only = "#[cfg(test)]\nmod tests {\n    x.unwrap();\n}\n";
        assert!(scan_source("src/serve/frame.rs", test_only).is_empty());
    }

    #[test]
    fn calib_store_access_flagged_outside_the_calibration_crate() {
        let cases = [
            "    let store = CalibStore::load(path)?;\n",
            "    let mut persistent = crate::calib::CalibStore::load_or_empty(path)?;\n",
            "    persistent.save(path)?;\n",
            "    let c = Correction::fit(&pairs);\n",
            "    let fits = fit_corrections(&store, board, precision, &metrics);\n",
        ];
        for src in cases {
            let hits = scan_source("src/session.rs", src);
            assert_eq!(hits.len(), 1, "{src:?}");
            assert_eq!(hits[0].rule, Rule::CalibStore, "{src:?}");
            // The defining crate is the one sanctioned home.
            assert!(
                scan_source("crates/calib/src/store.rs", src).is_empty(),
                "{src:?}"
            );
        }
        // In-memory store use (no I/O, no fitting) is fine anywhere.
        let fine = "    let mut fresh = crate::calib::CalibStore::new();\n";
        assert!(scan_source("src/session.rs", fine).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_rule_and_prefix() {
        let allow = parse_allowlist(
            "# timing is this module's job\nwall-clock crates/dse/src/optimizer.rs\n",
        )
        .unwrap();
        let hit = Finding {
            rule: Rule::WallClock,
            path: "crates/dse/src/optimizer.rs".into(),
            line: 1,
            excerpt: String::new(),
        };
        assert!(is_allowed(&hit, &allow));
        // Different rule or path: not suppressed.
        let other = Finding {
            rule: Rule::DebugPrint,
            ..hit.clone()
        };
        assert!(!is_allowed(&other, &allow));
        let elsewhere = Finding {
            path: "crates/core/src/lib.rs".into(),
            ..hit
        };
        assert!(!is_allowed(&elsewhere, &allow));
    }

    #[test]
    fn allowlist_rejects_unknown_rules() {
        assert!(parse_allowlist("no-such-rule src/\n").is_err());
        assert!(parse_allowlist("wall-clock\n").is_err());
    }
}
