//! `mccm-lint`: the workspace conformance gate.
//!
//! Scans the MCCM workspace source for project-rule violations (see the
//! library docs for the rule catalogue) and exits non-zero with
//! `file:line` diagnostics when any unallowlisted finding remains —
//! wired into CI next to `cargo clippy`.

use std::path::Path;
use std::process::ExitCode;

use mccm_lint::{parse_allowlist, scan_workspace};

fn main() -> ExitCode {
    // The binary lives at `crates/lint`, two levels below the root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");

    let allow_path = root.join("lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("mccm-lint: {}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Vec::new(), // no allowlist: nothing is exempt
    };

    let findings = match scan_workspace(root, &allow) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("mccm-lint: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if findings.is_empty() {
        println!("mccm-lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("mccm-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
