//! The conformance gate, enforced from `cargo test` too: the workspace's
//! own source must scan clean against the checked-in allowlist.

use std::path::Path;

use mccm_lint::{parse_allowlist, scan_workspace};

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let allow_text = std::fs::read_to_string(root.join("lint-allow.txt"))
        .expect("lint-allow.txt exists at the workspace root");
    let allow = parse_allowlist(&allow_text).expect("allowlist parses");
    let findings = scan_workspace(root, &allow).expect("scan succeeds");
    assert!(
        findings.is_empty(),
        "mccm-lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_prefixes_still_exist() {
    // A stale allowlist entry (file renamed away) would silently allow a
    // future reintroduction at the old path; require entries to point at
    // real files or directories.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap();
    let allow_text = std::fs::read_to_string(root.join("lint-allow.txt")).unwrap();
    for entry in parse_allowlist(&allow_text).unwrap() {
        assert!(
            root.join(&entry.path_prefix).exists(),
            "allowlist prefix `{}` matches nothing",
            entry.path_prefix
        );
    }
}
