//! Dimensional-safety newtypes for the MCCM cost model.
//!
//! The analytical model's whole value proposition is that it can be
//! trusted in place of simulation — which makes silent unit mix-ups
//! (cycles added to bytes, MACs multiplied where joules were meant) the
//! most dangerous bug class in the workspace. Every quantity the model
//! reasons about therefore gets a `#[repr(transparent)]` newtype with
//! **only dimensionally-valid operator impls**:
//!
//! * counting quantities over `u64` — [`Cycles`], [`Bytes`], [`Macs`] —
//!   with saturating `+`/`-`/`Σ`, scalar `×`/`÷`, and explicit checked
//!   variants; two byte counts divide into a dimensionless pass count,
//!   bytes never add to cycles;
//! * the PE allocation count [`Pes`] over `u32`;
//! * continuous quantities over `f64` — [`Joules`], plus the derived
//!   rates [`Bandwidth`] (bytes/cycle) and [`Throughput`] (frames/s) —
//!   whose constructors reject non-finite or negative values in release
//!   builds too (an `assert!`, not a `debug_assert!`).
//!
//! Conversions between dimensions are named methods that carry the
//! physics: [`Bandwidth::cycles_for`] turns traffic into DMA cycles,
//! [`Cycles::to_seconds`] applies a clock period, [`Macs::traffic_at`]
//! applies a bytes-per-MAC coefficient.
//!
//! # Serialization
//!
//! Every quantity `Display`s as its bare inner value (integers without
//! any decoration, `f64`s via Rust's shortest-roundtrip formatting), so
//! rendering a typed field produces byte-identical output to the raw
//! field it replaced — the deterministic-JSON invariant of the scenario
//! layer survives the type refactor unchanged. The facade crate's JSON
//! writer builds its `From` impls on [`Cycles::get`]-style accessors.
//!
//! This crate is dependency-free and sits below `mccm-arch`/`mccm-core`
//! in the workspace graph; `mccm_core::quantity` re-exports it.

#![warn(missing_docs)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Implements the shared surface of a `u64`-backed counting quantity:
/// saturating operator arithmetic, explicit checked variants, `Display`
/// as the bare integer, and lossless accessors.
macro_rules! counting_quantity {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0);
            /// Largest representable value — also the saturation point of
            /// the operator arithmetic.
            pub const MAX: Self = Self(u64::MAX);

            /// Wraps a raw count.
            #[inline]
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw count.
            #[inline]
            #[must_use]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// The count as an `f64` (for ratios and continuous math).
            ///
            /// Counts above 2⁵³ round to the nearest representable
            /// float; model quantities live far below that, and ratios
            /// of near-equal giants are insensitive to the rounding.
            #[inline]
            #[must_use]
            #[allow(clippy::cast_precision_loss)]
            pub const fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Checked addition.
            #[inline]
            #[must_use]
            pub const fn checked_add(self, rhs: Self) -> Option<Self> {
                match self.0.checked_add(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Checked subtraction.
            #[inline]
            #[must_use]
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Checked scalar multiplication.
            #[inline]
            #[must_use]
            pub const fn checked_mul(self, rhs: u64) -> Option<Self> {
                match self.0.checked_mul(rhs) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Saturating addition (also what the `+` operator does).
            #[inline]
            #[must_use]
            pub const fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction (also what the `-` operator does).
            #[inline]
            #[must_use]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Saturating scalar multiplication (also what `*` does).
            #[inline]
            #[must_use]
            pub const fn saturating_mul(self, rhs: u64) -> Self {
                Self(self.0.saturating_mul(rhs))
            }

            /// The larger of the two values.
            #[inline]
            #[must_use]
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }

            /// The smaller of the two values.
            #[inline]
            #[must_use]
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }

            /// Whether the count is zero.
            #[inline]
            #[must_use]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }
        }

        impl Add for $name {
            type Output = Self;
            /// Saturating: a sum of in-range model quantities never
            /// wraps into a silently small (and dimensionally "valid")
            /// garbage value.
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.saturating_add(rhs);
            }
        }

        impl Sub for $name {
            type Output = Self;
            /// Saturating at zero: counts have no negative values.
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.saturating_sub(rhs);
            }
        }

        impl Mul<u64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: u64) -> Self {
                self.saturating_mul(rhs)
            }
        }

        impl Div<u64> for $name {
            type Output = Self;
            /// Scalar division (splitting a quantity into `rhs` shares).
            ///
            /// # Panics
            ///
            /// On division by zero, like the underlying integer op.
            #[inline]
            fn div(self, rhs: u64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            #[inline]
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Self::saturating_add)
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            #[inline]
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.copied().sum()
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(v: $name) -> u64 {
                v.get()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

counting_quantity! {
    /// A count of clock cycles.
    Cycles
}

counting_quantity! {
    /// A count of bytes (traffic volumes, buffer capacities).
    Bytes
}

counting_quantity! {
    /// A count of multiply-accumulate operations.
    Macs
}

impl Cycles {
    /// Converts cycles to seconds under a clock period of
    /// `cycle_time_s` seconds per cycle.
    #[inline]
    #[must_use]
    pub fn to_seconds(self, cycle_time_s: f64) -> f64 {
        self.as_f64() * cycle_time_s
    }
}

impl Bytes {
    /// The byte count in MiB.
    #[inline]
    #[must_use]
    pub fn mib(self) -> f64 {
        self.as_f64() / (1024.0 * 1024.0)
    }

    /// How many passes of size `chunk` cover this volume (ceiling), a
    /// dimensionless count — the only way two byte quantities divide.
    ///
    /// # Panics
    ///
    /// If `chunk` is zero.
    #[inline]
    #[must_use]
    pub const fn div_ceil(self, chunk: Bytes) -> u64 {
        self.0.div_ceil(chunk.0)
    }
}

impl Macs {
    /// Buffer traffic these MACs move at `bytes_per_mac` bytes each —
    /// the MACs→bytes conversion of the on-chip energy term.
    #[inline]
    #[must_use]
    pub const fn traffic_at(self, bytes_per_mac: u64) -> Bytes {
        Bytes::new(self.0.saturating_mul(bytes_per_mac))
    }
}

/// A count of processing elements (the PE allocation of one CE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Pes(u32);

impl Pes {
    /// Zero PEs.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw PE count.
    #[inline]
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw PE count.
    #[inline]
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The PE count widened to `u64` (for MAC-capacity products).
    #[inline]
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// The PE count as an `f64` (for utilization ratios); `u32` → `f64`
    /// is exact.
    #[inline]
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Pes {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl Sum for Pes {
    #[inline]
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Pes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Asserts — in release builds too — that a continuous quantity is
/// finite and non-negative. Model quantities are measurements; NaN or
/// negative values are always an upstream bug, and letting one through
/// would silently poison every aggregate it touches.
#[inline]
fn check_continuous(kind: &str, raw: f64) -> f64 {
    assert!(
        raw.is_finite() && raw >= 0.0,
        "{kind} must be finite and non-negative, got {raw}"
    );
    raw
}

/// An amount of energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Self = Self(0.0);

    /// Wraps a joule amount.
    ///
    /// # Panics
    ///
    /// If `raw` is not finite or is negative — in release builds too.
    #[inline]
    #[must_use]
    pub fn new(raw: f64) -> Self {
        Self(check_continuous("Joules", raw))
    }

    /// Wraps a picojoule amount (the unit energy coefficients use).
    ///
    /// # Panics
    ///
    /// If `pj` is not finite or is negative.
    #[inline]
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// The amount in joules.
    #[inline]
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The amount in millijoules.
    #[inline]
    #[must_use]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }
}

impl Add for Joules {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sum for Joules {
    #[inline]
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// An off-chip transfer rate in bytes per clock cycle — the derived
/// quantity that converts traffic volumes into DMA time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[repr(transparent)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Wraps a bytes-per-cycle rate.
    ///
    /// # Panics
    ///
    /// If `bytes_per_cycle` is not finite or is not strictly positive —
    /// in release builds too (a zero or NaN rate would turn every
    /// memory-time division into nonsense).
    #[inline]
    #[must_use]
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "Bandwidth must be finite and positive, got {bytes_per_cycle}"
        );
        Self(bytes_per_cycle)
    }

    /// The raw rate in bytes per cycle.
    #[inline]
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// DMA cycles to move `bytes` at this rate (ceiling division of a
    /// byte count by a fractional rate); zero bytes take zero cycles.
    #[inline]
    #[must_use]
    // Audited: the ceiling of a non-negative finite ratio fits u64 for
    // every representable traffic volume, and the result is ≥ 0.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn cycles_for(self, bytes: Bytes) -> Cycles {
        if bytes.is_zero() {
            Cycles::ZERO
        } else {
            Cycles::new((bytes.as_f64() / self.0).ceil() as u64)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A steady-state processing rate in frames per second — the derived
/// quantity behind the model's throughput metric.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[repr(transparent)]
pub struct Throughput(f64);

impl Throughput {
    /// Zero throughput (a design that never completes an inference).
    pub const ZERO: Self = Self(0.0);

    /// Wraps a frames-per-second rate.
    ///
    /// # Panics
    ///
    /// If `fps` is not finite or is negative — in release builds too.
    #[inline]
    #[must_use]
    pub fn new(fps: f64) -> Self {
        Self(check_continuous("Throughput", fps))
    }

    /// Throughput of one frame per `period_s` seconds.
    ///
    /// # Panics
    ///
    /// If `period_s` is not finite or is not strictly positive.
    #[inline]
    #[must_use]
    pub fn from_period_s(period_s: f64) -> Self {
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "Throughput period must be finite and positive, got {period_s}"
        );
        Self(1.0 / period_s)
    }

    /// The rate in frames per second.
    #[inline]
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The steady-state initiation interval in seconds (`None` at zero
    /// throughput).
    #[inline]
    #[must_use]
    pub fn period_s(self) -> Option<f64> {
        (self.0 > 0.0).then(|| 1.0 / self.0)
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_arithmetic_is_saturating() {
        assert_eq!(Bytes::MAX + Bytes::new(1), Bytes::MAX);
        assert_eq!(Bytes::new(3) - Bytes::new(5), Bytes::ZERO);
        assert_eq!(Cycles::MAX * 2, Cycles::MAX);
        assert_eq!(
            [Macs::MAX, Macs::new(7)].into_iter().sum::<Macs>(),
            Macs::MAX
        );
    }

    #[test]
    fn checked_variants_report_overflow() {
        assert_eq!(Bytes::MAX.checked_add(Bytes::new(1)), None);
        assert_eq!(Bytes::new(1).checked_sub(Bytes::new(2)), None);
        assert_eq!(Cycles::MAX.checked_mul(2), None);
        assert_eq!(Bytes::new(6).checked_mul(7), Some(Bytes::new(42)));
    }

    #[test]
    fn in_range_arithmetic_is_exact() {
        assert_eq!(Bytes::new(40) + Bytes::new(2), Bytes::new(42));
        assert_eq!(Cycles::new(100) - Cycles::new(58), Cycles::new(42));
        assert_eq!(Macs::new(6) * 7, Macs::new(42));
        assert_eq!(Bytes::new(85) / 2, Bytes::new(42));
        assert_eq!((1..=5).map(Cycles::new).sum::<Cycles>(), Cycles::new(15));
    }

    #[test]
    fn dimensional_conversions() {
        // bytes / bandwidth -> cycles, with ceiling.
        let bw = Bandwidth::new(19.2);
        assert_eq!(bw.cycles_for(Bytes::ZERO), Cycles::ZERO);
        assert_eq!(bw.cycles_for(Bytes::new(19)), Cycles::new(1));
        assert_eq!(bw.cycles_for(Bytes::new(20)), Cycles::new(2));
        // cycles × period -> seconds.
        assert!((Cycles::new(200_000_000).to_seconds(5e-9) - 1.0).abs() < 1e-12);
        // macs × bytes/mac -> bytes.
        assert_eq!(Macs::new(21).traffic_at(2), Bytes::new(42));
        // bytes / bytes -> dimensionless pass count.
        assert_eq!(Bytes::new(100).div_ceil(Bytes::new(30)), 4);
    }

    #[test]
    fn display_is_the_bare_value() {
        assert_eq!(Bytes::new(1234).to_string(), "1234");
        assert_eq!(Cycles::ZERO.to_string(), "0");
        assert_eq!(Pes::new(256).to_string(), "256");
        assert_eq!(Joules::new(0.25).to_string(), "0.25");
        assert_eq!(Throughput::new(62.5).to_string(), "62.5");
    }

    #[test]
    fn mib_and_millijoules_scale() {
        assert!((Bytes::new(2 * 1024 * 1024).mib() - 2.0).abs() < 1e-12);
        assert!((Joules::new(0.004).millijoules() - 4.0).abs() < 1e-12);
        assert!((Joules::from_picojoules(2e12).get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pes_widen_exactly() {
        let p = Pes::new(2520);
        assert_eq!(p.as_u64(), 2520);
        assert!((p.as_f64() - 2520.0).abs() < f64::EPSILON);
        assert_eq!((Pes::new(1) + Pes::new(2)).get(), 3);
        assert_eq!([Pes::new(1), Pes::new(2)].into_iter().sum::<Pes>().get(), 3);
    }

    #[test]
    fn throughput_period_round_trips() {
        let t = Throughput::from_period_s(0.02);
        assert!((t.get() - 50.0).abs() < 1e-12);
        assert!((t.period_s().unwrap() - 0.02).abs() < 1e-12);
        assert_eq!(Throughput::ZERO.period_s(), None);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_joules_rejected_in_release_too() {
        // `assert!`, not `debug_assert!`: this must fire in release.
        let _ = Joules::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_throughput_rejected() {
        let _ = Throughput::new(-1.0);
    }
}
