//! The exploration driver: baseline sweeps, custom-space sampling, and
//! timing of model evaluations (the paper's Use Cases 1 and 3).
//!
//! Every sampling entry point is attempt-capped (no more unbounded
//! retry loops on infeasible spaces) and distinguishes genuinely
//! infeasible designs — skipped — from real builder faults, which are
//! propagated as [`ExploreError::Arch`]. The `par_*` twins of each sweep
//! live in the [`crate::parallel`] machinery and return identical results
//! for any worker count.

use std::time::{Duration, Instant};

use mccm_arch::{templates, AcceleratorSpec, ArchError, MultipleCeBuilder};
use mccm_cnn::CnnModel;
use mccm_core::{CostModel, EvalScratch, EvalSummary, Evaluation};
use mccm_fpga::FpgaBoard;

use crate::error::ExploreError;
use crate::parallel;
use crate::space::{CustomDesign, CustomSpace};

/// One evaluated design.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The specification.
    pub spec: AcceleratorSpec,
    /// Its evaluation.
    pub eval: Evaluation,
}

/// A baseline instance: architecture, CE count, evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Which of the three architectures.
    pub architecture: templates::Architecture,
    /// CE count.
    pub ces: usize,
    /// Its evaluation.
    pub eval: Evaluation,
}

/// A custom-space design with its lean evaluation summary — the record
/// big sweeps accumulate instead of full [`DesignPoint`]s, so 100k-design
/// runs stop cloning the heavy per-segment/per-engine/per-layer vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomPoint {
    /// The sampled (or enumerated) design.
    pub design: CustomDesign,
    /// Its metrics-only evaluation.
    pub summary: EvalSummary,
}

/// Default sampling attempt budget for `count` requested points: spaces
/// where fewer than ~1/64 of draws are feasible fail fast with
/// [`ExploreError::AttemptsExhausted`] instead of spinning forever.
pub fn default_max_attempts(count: usize) -> u64 {
    (count as u64).saturating_mul(64).max(1024)
}

/// Explores designs for one (CNN, board) pair.
///
/// # Examples
///
/// ```
/// use mccm_cnn::zoo;
/// use mccm_dse::Explorer;
/// use mccm_fpga::FpgaBoard;
///
/// let model = zoo::mobilenet_v2();
/// let explorer = Explorer::new(&model, &FpgaBoard::zc706());
/// let baselines = explorer.sweep_baselines(2..=5).unwrap();
/// assert_eq!(baselines.len(), 3 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    model: CnnModel,
    builder: MultipleCeBuilder,
}

impl Explorer {
    /// Creates an explorer (default 8-bit precision).
    pub fn new(model: &CnnModel, board: &FpgaBoard) -> Self {
        Self {
            model: model.clone(),
            builder: MultipleCeBuilder::new(model, board),
        }
    }

    /// Wraps an existing builder (with whatever precision/options it
    /// carries) instead of constructing a fresh one — the hook session
    /// caches use so a warmed builder context (shared `Arc`s, populated
    /// parallelism memo) keeps serving every exploration entry point.
    /// `builder` must have been constructed for `model`.
    pub fn from_parts(model: CnnModel, builder: MultipleCeBuilder) -> Self {
        assert_eq!(
            model.conv_layer_count(),
            builder.layer_count(),
            "builder was constructed for a different model"
        );
        Self { model, builder }
    }

    /// The underlying model.
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// The underlying builder (shared build context, precision, board).
    pub fn builder(&self) -> &MultipleCeBuilder {
        &self.builder
    }

    /// Builds and evaluates one specification.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors.
    pub fn evaluate(&self, spec: &AcceleratorSpec) -> Result<DesignPoint, ArchError> {
        let acc = self.builder.build(spec)?;
        Ok(DesignPoint {
            spec: spec.clone(),
            eval: CostModel::evaluate(&acc),
        })
    }

    /// Builds and evaluates one specification through the summary fast
    /// lane ([`CostModel::evaluate_summary`]): metrics only, with the
    /// caller's scratch buffers reused across calls. This is what the
    /// `*_summaries` sweeps pay per design.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors.
    pub fn evaluate_summary(
        &self,
        spec: &AcceleratorSpec,
        scratch: &mut EvalScratch,
    ) -> Result<EvalSummary, ArchError> {
        let acc = self.builder.build(spec)?;
        Ok(CostModel::evaluate_summary(&acc, scratch))
    }

    /// Evaluates one baseline grid cell: `Ok(None)` when the combination
    /// is infeasible on this board, `Err` on any real builder fault.
    pub(crate) fn baseline_cell(
        &self,
        architecture: templates::Architecture,
        ces: usize,
    ) -> Result<Option<BaselinePoint>, ArchError> {
        let spec = match architecture.instantiate(&self.model, ces) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        match self.evaluate(&spec) {
            Ok(point) => Ok(Some(BaselinePoint {
                architecture,
                ces,
                eval: point.eval,
            })),
            Err(ArchError::Infeasible { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Evaluates a sampled custom design: `Ok(None)` when infeasible,
    /// `Err` on real faults.
    pub(crate) fn custom_cell(
        &self,
        design: &CustomDesign,
    ) -> Result<Option<DesignPoint>, ArchError> {
        let spec = match design.to_spec(&self.model) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        match self.evaluate(&spec) {
            Ok(point) => Ok(Some(point)),
            Err(ArchError::Infeasible { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Fast-lane twin of [`Self::custom_cell`]: summary-only evaluation
    /// with reused scratch buffers — `Ok(None)` when infeasible, `Err` on
    /// real faults. Produces exactly `custom_cell(d)?.eval.summary()`.
    pub(crate) fn custom_summary_cell(
        &self,
        design: &CustomDesign,
        scratch: &mut EvalScratch,
    ) -> Result<Option<CustomPoint>, ArchError> {
        let spec = match design.to_spec(&self.model) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        match self.evaluate_summary(&spec, scratch) {
            Ok(summary) => Ok(Some(CustomPoint {
                design: design.clone(),
                summary,
            })),
            Err(ArchError::Infeasible { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Evaluates every baseline architecture at every CE count in `range`
    /// (infeasible combinations skipped) — the instance grid behind
    /// Tables I/V and Figs. 5/8.
    ///
    /// # Errors
    ///
    /// Propagates any builder fault other than [`ArchError::Infeasible`]
    /// — real bugs must not be silently reported as "infeasible" (the old
    /// code swallowed every error here).
    pub fn sweep_baselines(
        &self,
        range: impl IntoIterator<Item = usize> + Clone,
    ) -> Result<Vec<BaselinePoint>, ArchError> {
        let mut out = Vec::new();
        for architecture in templates::Architecture::ALL {
            for ces in range.clone() {
                if let Some(point) = self.baseline_cell(architecture, ces)? {
                    out.push(point);
                }
            }
        }
        Ok(out)
    }

    /// Samples and evaluates `count` custom designs (Use Case 3),
    /// returning the points plus the total wall time — the quantity
    /// behind the paper's "100000 designs in 10.5 minutes".
    ///
    /// The point set is a pure function of `(count, seed)` — the same set
    /// the `par_sample_custom` twin produces for any worker count.
    ///
    /// # Errors
    ///
    /// [`ExploreError::AttemptsExhausted`] when the default attempt
    /// budget ([`default_max_attempts`]) runs out before `count` feasible
    /// designs are found, [`ExploreError::Arch`] on real builder faults.
    pub fn sample_custom(
        &self,
        count: usize,
        seed: u64,
    ) -> Result<(Vec<DesignPoint>, Duration), ExploreError> {
        self.sample_custom_capped(count, seed, default_max_attempts(count))
    }

    /// [`Self::sample_custom`] with an explicit attempt budget.
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`], with `max_attempts` as the budget.
    pub fn sample_custom_capped(
        &self,
        count: usize,
        seed: u64,
        max_attempts: u64,
    ) -> Result<(Vec<DesignPoint>, Duration), ExploreError> {
        let start = Instant::now();
        let (points, attempts, _) = parallel::sample_engine(
            self,
            count,
            seed,
            1,
            max_attempts,
            &crate::CancelToken::new(),
            &|e, d, _| e.custom_cell(d),
        )?;
        let points = parallel::finish(points, count, attempts)?;
        Ok((points, start.elapsed()))
    }

    /// Samples `count` custom designs, keeping only the lean
    /// [`EvalSummary`] per design — the memory-friendly form for big
    /// sweeps, evaluated through the allocation-free summary fast lane.
    /// Same point set (and bit-identical metrics) as
    /// [`Self::sample_custom`].
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`].
    pub fn sample_custom_summaries(
        &self,
        count: usize,
        seed: u64,
    ) -> Result<(Vec<CustomPoint>, Duration), ExploreError> {
        let start = Instant::now();
        let (points, attempts, _) = parallel::sample_engine(
            self,
            count,
            seed,
            1,
            default_max_attempts(count),
            &crate::CancelToken::new(),
            &|e, d, scratch| e.custom_summary_cell(d, scratch),
        )?;
        let points = parallel::finish(points, count, attempts)?;
        Ok((points, start.elapsed()))
    }

    /// The paper's custom space for this explorer's model (2–11 CEs).
    pub fn paper_space(&self) -> CustomSpace {
        CustomSpace::paper_range(self.model.conv_layer_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;
    use mccm_core::Metric;

    #[test]
    fn baseline_sweep_covers_grid() {
        let m = zoo::resnet50();
        let e = Explorer::new(&m, &FpgaBoard::vcu108());
        let points = e.sweep_baselines(2..=11).unwrap();
        assert_eq!(points.len(), 30); // 3 architectures x 10 CE counts
        for p in &points {
            assert_eq!(p.eval.ce_count, p.ces);
            assert!(p.eval.throughput_fps > 0.0);
        }
    }

    #[test]
    fn from_parts_reuses_the_given_builder_context() {
        let m = zoo::mobilenet_v2();
        let board = FpgaBoard::zc706();
        let fresh = Explorer::new(&m, &board);
        let wrapped = Explorer::from_parts(m.clone(), fresh.builder().clone());
        assert_eq!(
            fresh.builder().context_token(),
            wrapped.builder().context_token(),
            "from_parts must not reconstruct the build context"
        );
        let spec = mccm_arch::templates::segmented(&m, 3).unwrap();
        let a = fresh.evaluate(&spec).unwrap();
        let b = wrapped.evaluate(&spec).unwrap();
        assert_eq!(a.eval, b.eval);
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn from_parts_rejects_mismatched_model() {
        let m = zoo::mobilenet_v2();
        let other = zoo::resnet50();
        let builder = MultipleCeBuilder::new(&other, &FpgaBoard::zc706());
        let _ = Explorer::from_parts(m, builder);
    }

    #[test]
    fn custom_sampling_produces_valid_points() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let (points, elapsed) = e.sample_custom(50, 9).unwrap();
        assert_eq!(points.len(), 50);
        assert!(elapsed.as_nanos() > 0);
        for p in &points {
            assert!(p.eval.latency_s > 0.0);
            assert!((2..=11).contains(&p.eval.ce_count));
        }
    }

    #[test]
    fn summaries_match_full_points() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let (full, _) = e.sample_custom(25, 4).unwrap();
        let (lean, _) = e.sample_custom_summaries(25, 4).unwrap();
        assert_eq!(full.len(), lean.len());
        for (f, l) in full.iter().zip(&lean) {
            assert_eq!(f.eval.summary(), l.summary);
        }
    }

    #[test]
    fn custom_designs_can_beat_baselines_on_some_metric() {
        // Use Case 3's premise: the custom space contains points that
        // improve on at least one baseline metric.
        let m = zoo::xception();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let baselines = e.sweep_baselines(2..=11).unwrap();
        let best_buffer = baselines
            .iter()
            .map(|p| Metric::OnChipBuffers.value(&p.eval))
            .fold(f64::INFINITY, f64::min);
        let (points, _) = e.sample_custom(120, 11).unwrap();
        let best_custom = points
            .iter()
            .map(|p| Metric::OnChipBuffers.value(&p.eval))
            .fold(f64::INFINITY, f64::min);
        // Customs should at least approach the baseline best (within 2x).
        assert!(
            best_custom < 2.0 * best_buffer,
            "{best_custom} vs {best_buffer}"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let (a, _) = e.sample_custom(20, 5).unwrap();
        let (b, _) = e.sample_custom(20, 5).unwrap();
        let na: Vec<_> = a.iter().map(|p| p.eval.notation.clone()).collect();
        let nb: Vec<_> = b.iter().map(|p| p.eval.notation.clone()).collect();
        assert_eq!(na, nb);
    }

    #[test]
    fn exhausted_attempt_budget_errors_instead_of_hanging() {
        // Regression: `while points.len() < count` used to spin forever
        // when the space could not yield enough feasible designs.
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        match e.sample_custom_capped(100, 1, 5) {
            Err(ExploreError::AttemptsExhausted {
                wanted,
                got,
                attempts,
            }) => {
                assert_eq!(wanted, 100);
                assert!(got <= 5);
                assert!(attempts <= 5);
            }
            other => panic!("expected AttemptsExhausted, got {other:?}"),
        }
    }
}
