//! The exploration driver: baseline sweeps, custom-space sampling, and
//! timing of model evaluations (the paper's Use Cases 1 and 3).

use std::time::{Duration, Instant};

use mccm_arch::{templates, AcceleratorSpec, ArchError, MultipleCeBuilder};
use mccm_cnn::CnnModel;
use mccm_core::{CostModel, Evaluation};
use mccm_fpga::FpgaBoard;

use crate::sampler::CustomSampler;
use crate::space::{CustomDesign, CustomSpace};

/// One evaluated design.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The specification.
    pub spec: AcceleratorSpec,
    /// Its evaluation.
    pub eval: Evaluation,
}

/// A baseline instance: architecture, CE count, evaluation.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// Which of the three architectures.
    pub architecture: templates::Architecture,
    /// CE count.
    pub ces: usize,
    /// Its evaluation.
    pub eval: Evaluation,
}

/// Explores designs for one (CNN, board) pair.
///
/// # Examples
///
/// ```
/// use mccm_cnn::zoo;
/// use mccm_dse::Explorer;
/// use mccm_fpga::FpgaBoard;
///
/// let model = zoo::mobilenet_v2();
/// let explorer = Explorer::new(&model, &FpgaBoard::zc706());
/// let baselines = explorer.sweep_baselines(2..=5);
/// assert_eq!(baselines.len(), 3 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    model: CnnModel,
    builder: MultipleCeBuilder,
}

impl Explorer {
    /// Creates an explorer (default 8-bit precision).
    pub fn new(model: &CnnModel, board: &FpgaBoard) -> Self {
        Self { model: model.clone(), builder: MultipleCeBuilder::new(model, board) }
    }

    /// The underlying model.
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// Builds and evaluates one specification.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors.
    pub fn evaluate(&self, spec: &AcceleratorSpec) -> Result<DesignPoint, ArchError> {
        let acc = self.builder.build(spec)?;
        Ok(DesignPoint { spec: spec.clone(), eval: CostModel::evaluate(&acc) })
    }

    /// Evaluates every baseline architecture at every CE count in `range`
    /// (infeasible combinations skipped) — the instance grid behind
    /// Tables I/V and Figs. 5/8.
    pub fn sweep_baselines(
        &self,
        range: impl IntoIterator<Item = usize> + Clone,
    ) -> Vec<BaselinePoint> {
        let mut out = Vec::new();
        for architecture in templates::Architecture::ALL {
            for ces in range.clone() {
                let Ok(spec) = architecture.instantiate(&self.model, ces) else {
                    continue;
                };
                let Ok(point) = self.evaluate(&spec) else { continue };
                out.push(BaselinePoint { architecture, ces, eval: point.eval });
            }
        }
        out
    }

    /// Samples and evaluates `count` custom designs (Use Case 3),
    /// returning the points plus the total model-evaluation wall time —
    /// the quantity behind the paper's "100000 designs in 10.5 minutes".
    pub fn sample_custom(
        &self,
        count: usize,
        seed: u64,
    ) -> (Vec<DesignPoint>, Duration) {
        let space = CustomSpace::paper_range(self.model.conv_layer_count());
        let mut sampler = CustomSampler::new(space, seed);
        let mut points = Vec::with_capacity(count);
        let start = Instant::now();
        while points.len() < count {
            let design: CustomDesign = sampler.sample();
            let Ok(spec) = design.to_spec(&self.model) else { continue };
            if let Ok(p) = self.evaluate(&spec) {
                points.push(p);
            }
        }
        (points, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;
    use mccm_core::Metric;

    #[test]
    fn baseline_sweep_covers_grid() {
        let m = zoo::resnet50();
        let e = Explorer::new(&m, &FpgaBoard::vcu108());
        let points = e.sweep_baselines(2..=11);
        assert_eq!(points.len(), 30); // 3 architectures x 10 CE counts
        for p in &points {
            assert_eq!(p.eval.ce_count, p.ces);
            assert!(p.eval.throughput_fps > 0.0);
        }
    }

    #[test]
    fn custom_sampling_produces_valid_points() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let (points, elapsed) = e.sample_custom(50, 9);
        assert_eq!(points.len(), 50);
        assert!(elapsed.as_nanos() > 0);
        for p in &points {
            assert!(p.eval.latency_s > 0.0);
            assert!((2..=11).contains(&p.eval.ce_count));
        }
    }

    #[test]
    fn custom_designs_can_beat_baselines_on_some_metric() {
        // Use Case 3's premise: the custom space contains points that
        // improve on at least one baseline metric.
        let m = zoo::xception();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let baselines = e.sweep_baselines(2..=11);
        let best_buffer = baselines
            .iter()
            .map(|p| Metric::OnChipBuffers.value(&p.eval))
            .fold(f64::INFINITY, f64::min);
        let (points, _) = e.sample_custom(120, 11);
        let best_custom = points
            .iter()
            .map(|p| Metric::OnChipBuffers.value(&p.eval))
            .fold(f64::INFINITY, f64::min);
        // Customs should at least approach the baseline best (within 2x).
        assert!(best_custom < 2.0 * best_buffer, "{best_custom} vs {best_buffer}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let (a, _) = e.sample_custom(20, 5);
        let (b, _) = e.sample_custom(20, 5);
        let na: Vec<_> = a.iter().map(|p| p.eval.notation.clone()).collect();
        let nb: Vec<_> = b.iter().map(|p| p.eval.notation.clone()).collect();
        assert_eq!(na, nb);
    }
}
