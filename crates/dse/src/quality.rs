//! Front-quality measures for comparing design-space searches:
//! hypervolume and coverage (the two standard multi-objective indicators),
//! plus a convenience comparison of two fronts at equal budget.
//!
//! Hypervolume is computed **exactly** (recursive dimension sweep) in a
//! normalized space: every metric is oriented to minimization and scaled
//! by shared [`MetricBounds`] so heterogeneous units (seconds × FPS ×
//! bytes × joules) cannot distort the volume. The reference corner sits at
//! 1.1 per dimension — slightly beyond the shared nadir, so nadir-touching
//! points still contribute — and the result is reported as the fraction of
//! the reference box that the front dominates (in `[0, 1]`).

use mccm_core::{Metric, MetricSource};

/// Shared per-metric scaling bounds, in raw metric units: `ideal` is the
/// best observed value, `nadir` the worst (direction per
/// [`Metric::higher_is_better`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricBounds {
    /// Best observed value of the metric.
    pub ideal: f64,
    /// Worst observed value of the metric.
    pub nadir: f64,
}

/// The reference corner of the normalized hypervolume box, per dimension.
const REFERENCE: f64 = 1.1;

/// Shared bounds over the union of several point sets — the scaling both
/// fronts must use for their hypervolumes to be comparable.
///
/// # Panics
///
/// If the union is empty or `metrics` is empty.
pub fn union_bounds<S: MetricSource>(sets: &[&[S]], metrics: &[Metric]) -> Vec<MetricBounds> {
    assert!(!metrics.is_empty(), "bounds need at least one metric");
    assert!(
        sets.iter().any(|s| !s.is_empty()),
        "bounds need at least one point"
    );
    metrics
        .iter()
        .map(|m| {
            let mut ideal = f64::INFINITY;
            let mut nadir = f64::NEG_INFINITY;
            for s in sets {
                for item in *s {
                    let v = oriented(*m, m.value(item));
                    ideal = ideal.min(v);
                    nadir = nadir.max(v);
                }
            }
            MetricBounds {
                ideal: unoriented(*m, ideal),
                nadir: unoriented(*m, nadir),
            }
        })
        .collect()
}

/// Exact hypervolume of `items` under shared `bounds`, as the dominated
/// fraction of the normalized reference box (in `[0, 1]`).
///
/// # Panics
///
/// If `bounds.len() != metrics.len()` or `metrics` is empty.
pub fn hypervolume<S: MetricSource>(
    items: &[S],
    metrics: &[Metric],
    bounds: &[MetricBounds],
) -> f64 {
    assert!(!metrics.is_empty(), "hypervolume needs at least one metric");
    assert_eq!(bounds.len(), metrics.len(), "one bound per metric");
    if items.is_empty() {
        return 0.0;
    }
    let mut points: Vec<Vec<f64>> = items
        .iter()
        .map(|item| {
            metrics
                .iter()
                .zip(bounds)
                .map(|(m, b)| normalized(*m, *b, m.value(item)))
                .collect()
        })
        .collect();
    prune_min(&mut points);
    let dims = i32::try_from(metrics.len()).expect("metric sets are tiny");
    hv_min(&mut points) / REFERENCE.powi(dims)
}

/// The coverage indicator `C(a, b)`: the fraction of `b`'s points that
/// some point of `a` weakly dominates (at least as good on every metric).
/// `C(a, b) = 1` means `a` covers all of `b`; the indicator is not
/// symmetric, so report both directions. Empty `b` yields 1.0 (vacuously
/// covered).
pub fn coverage<S: MetricSource>(a: &[S], b: &[S], metrics: &[Metric]) -> f64 {
    if b.is_empty() {
        return 1.0;
    }
    let covered = b
        .iter()
        .filter(|q| {
            a.iter()
                .any(|p| metrics.iter().all(|m| !m.better(m.value(*q), m.value(p))))
        })
        .count();
    // Front sizes stay far below 2^53, so the f64 ratio is exact.
    #[allow(clippy::cast_precision_loss)]
    let frac = covered as f64 / b.len() as f64;
    frac
}

/// Side-by-side quality comparison of two fronts over the same metric set
/// (shared normalization bounds from their union).
#[derive(Debug, Clone)]
pub struct FrontComparison {
    /// Normalized hypervolume of front `a`.
    pub hypervolume_a: f64,
    /// Normalized hypervolume of front `b`.
    pub hypervolume_b: f64,
    /// Fraction of `b` weakly dominated by `a`.
    pub coverage_a_over_b: f64,
    /// Fraction of `a` weakly dominated by `b`.
    pub coverage_b_over_a: f64,
    /// Best raw value per metric on front `a`.
    pub best_a: Vec<f64>,
    /// Best raw value per metric on front `b`.
    pub best_b: Vec<f64>,
    /// Number of metrics where `a`'s best matches or beats `b`'s best.
    pub a_best_or_tied: usize,
}

/// Compares two fronts over `metrics` with shared union bounds.
///
/// # Panics
///
/// If both fronts are empty or `metrics` is empty.
pub fn compare_fronts<S: MetricSource>(a: &[S], b: &[S], metrics: &[Metric]) -> FrontComparison {
    let bounds = union_bounds(&[a, b], metrics);
    let best = |set: &[S], m: Metric| {
        set.iter()
            .map(|p| m.value(p))
            .reduce(|x, y| if m.better(y, x) { y } else { x })
            .unwrap_or(f64::NAN)
    };
    let best_a: Vec<f64> = metrics.iter().map(|&m| best(a, m)).collect();
    let best_b: Vec<f64> = metrics.iter().map(|&m| best(b, m)).collect();
    // An empty front wins nothing (its bests are NaN, and NaN comparisons
    // would otherwise count as vacuous ties).
    let a_best_or_tied = if a.is_empty() {
        0
    } else {
        metrics
            .iter()
            .enumerate()
            .filter(|&(i, m)| b.is_empty() || !m.better(best_b[i], best_a[i]))
            .count()
    };
    FrontComparison {
        hypervolume_a: hypervolume(a, metrics, &bounds),
        hypervolume_b: hypervolume(b, metrics, &bounds),
        coverage_a_over_b: coverage(a, b, metrics),
        coverage_b_over_a: coverage(b, a, metrics),
        best_a,
        best_b,
        a_best_or_tied,
    }
}

/// Orients a raw metric value to minimization.
fn oriented(metric: Metric, v: f64) -> f64 {
    if metric.higher_is_better() {
        -v
    } else {
        v
    }
}

/// Maps an oriented (minimization) value back to raw metric units.
fn unoriented(metric: Metric, v: f64) -> f64 {
    oriented(metric, v) // negation is its own inverse
}

/// Scales a raw value into `[0, 1]` minimization space under `bounds`
/// (0 = shared ideal, 1 = shared nadir; degenerate bounds collapse to 0).
fn normalized(metric: Metric, bounds: MetricBounds, v: f64) -> f64 {
    let lo = oriented(metric, bounds.ideal);
    let hi = oriented(metric, bounds.nadir);
    if hi <= lo {
        return 0.0;
    }
    ((oriented(metric, v) - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// Drops every point weakly dominated by another (minimization; one copy
/// of exact duplicates survives). Pruning before each recursion level
/// keeps the dimension-sweep polynomial on real fronts — without it,
/// dominated interior points multiply the slice count at every level.
fn prune_min(points: &mut Vec<Vec<f64>>) {
    let n = points.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] {
                continue;
            }
            let weakly = points[j].iter().zip(&points[i]).all(|(a, b)| a <= b);
            let strictly = points[j].iter().zip(&points[i]).any(|(a, b)| a < b);
            if weakly && (strictly || j < i) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut it = keep.iter();
    points.retain(|_| *it.next().expect("one flag per point"));
}

/// Exact hypervolume of mutually non-dominated minimization points against
/// the `REFERENCE` corner — recursive dimension sweep: slice on the first
/// coordinate, recurse on the rest, pruning each slice's projection to its
/// own front first. Fronts of a few hundred points in ≤ 5 dimensions
/// evaluate in milliseconds.
fn hv_min(points: &mut [Vec<f64>]) -> f64 {
    debug_assert!(!points.is_empty());
    let d = points[0].len();
    if d == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (REFERENCE - best).max(0.0);
    }
    points.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut volume = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    let mut i = 0;
    while i < points.len() {
        let z = points[i][0];
        while i < points.len() && points[i][0] == z {
            active.push(points[i][1..].to_vec());
            i += 1;
        }
        let next = if i < points.len() {
            points[i][0].min(REFERENCE)
        } else {
            REFERENCE
        };
        let width = next - z.min(REFERENCE);
        if width > 0.0 {
            let mut slice = active.clone();
            prune_min(&mut slice);
            volume += width * hv_min(&mut slice);
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_core::{Bytes, EvalSummary, Macs};

    /// Stub summary with controllable latency (s) and buffers (bytes).
    fn point(latency_s: f64, buffers: u64) -> EvalSummary {
        EvalSummary {
            notation: String::new(),
            ce_count: 2,
            total_macs: Macs::ZERO,
            latency_s,
            throughput_fps: 1.0,
            buffer_req_bytes: Bytes::new(buffers),
            buffer_alloc_bytes: Bytes::new(buffers),
            offchip_bytes: Bytes::ZERO,
            offchip_weight_bytes: Bytes::ZERO,
            offchip_fm_bytes: Bytes::ZERO,
            memory_stall_fraction: 0.0,
        }
    }

    const LB: [Metric; 2] = [Metric::Latency, Metric::OnChipBuffers];

    #[test]
    fn ideal_point_dominates_the_whole_box() {
        // Bounds [0,1] on both metrics; a point at the shared ideal
        // dominates the entire 1.1 x 1.1 reference box.
        let bounds = [
            MetricBounds {
                ideal: 0.0,
                nadir: 1.0,
            },
            MetricBounds {
                ideal: 0.0,
                nadir: 1.0,
            },
        ];
        let hv = hypervolume(&[point(0.0, 0)], &LB, &bounds);
        assert!((hv - 1.0).abs() < 1e-12, "{hv}");
        // A nadir point still dominates the 0.1-wide margin strip.
        let hv = hypervolume(&[point(1.0, 1)], &LB, &bounds);
        assert!((hv - 0.01 / 1.21).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn two_point_front_volume_is_the_union_of_boxes() {
        let bounds = [
            MetricBounds {
                ideal: 0.0,
                nadir: 1.0,
            },
            MetricBounds {
                ideal: 0.0,
                nadir: 1_000_000_000.0,
            },
        ];
        // Scaled points (0, 0.5) and (0.5, 0):
        // union = 1.1*0.6 + 0.6*1.1 - 0.6*0.6 = 0.96, box = 1.21.
        let front = [point(0.0, 500_000_000), point(0.5, 0)];
        let hv = hypervolume(&front, &LB, &bounds);
        assert!((hv - 0.96 / 1.21).abs() < 1e-12, "{hv}");
        // Duplicates and dominated points change nothing.
        let with_noise = [
            point(0.0, 500_000_000),
            point(0.5, 0),
            point(0.5, 0),
            point(0.75, 750_000_000),
        ];
        let hv2 = hypervolume(&with_noise, &LB, &bounds);
        assert!((hv2 - hv).abs() < 1e-12);
    }

    #[test]
    fn throughput_orientation_is_respected() {
        // Higher throughput = better; the best point must yield the larger
        // single-metric hypervolume.
        let metrics = [Metric::Throughput];
        let mut fast = point(1.0, 1);
        fast.throughput_fps = 100.0;
        let mut slow = point(1.0, 1);
        slow.throughput_fps = 10.0;
        let all = [fast.clone(), slow.clone()];
        let bounds = union_bounds(&[&all], &metrics);
        assert_eq!(bounds[0].ideal, 100.0);
        assert_eq!(bounds[0].nadir, 10.0);
        let hv_fast = hypervolume(&[fast], &metrics, &bounds);
        let hv_slow = hypervolume(&[slow], &metrics, &bounds);
        assert!(hv_fast > hv_slow);
        assert!((hv_fast - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_weak_domination() {
        let a = [point(0.1, 100), point(0.5, 10)];
        let b = [point(0.2, 200), point(0.5, 10), point(0.05, 1000)];
        // (0.2,200) dominated by (0.1,100); (0.5,10) equals a member
        // (weakly covered); (0.05,1000) uncovered.
        let c = coverage(&a, &b, &LB);
        assert!((c - 2.0 / 3.0).abs() < 1e-12, "{c}");
        assert_eq!(coverage(&a, &[], &LB), 1.0);
        // Self-coverage of a non-dominated set is 1.
        assert_eq!(coverage(&a, &a, &LB), 1.0);
    }

    #[test]
    fn empty_front_wins_nothing() {
        // Regression: NaN bests of an empty front used to count as
        // vacuous ties on every metric.
        let b = [point(0.2, 150)];
        let cmp = compare_fronts(&[] as &[EvalSummary], &b, &LB);
        assert_eq!(cmp.a_best_or_tied, 0);
        assert_eq!(cmp.hypervolume_a, 0.0);
        assert!(cmp.best_a.iter().all(|v| v.is_nan()));
        // The non-empty side wins everything against an empty front.
        let cmp = compare_fronts(&b, &[] as &[EvalSummary], &LB);
        assert_eq!(cmp.a_best_or_tied, 2);
    }

    #[test]
    fn compare_fronts_reports_both_directions() {
        let a = [point(0.1, 100), point(0.4, 20)];
        let b = [point(0.2, 150), point(0.6, 40)];
        let cmp = compare_fronts(&a, &b, &LB);
        assert!(cmp.hypervolume_a > cmp.hypervolume_b);
        assert_eq!(cmp.coverage_a_over_b, 1.0);
        assert_eq!(cmp.coverage_b_over_a, 0.0);
        assert_eq!(cmp.a_best_or_tied, 2);
        assert_eq!(cmp.best_a, vec![0.1, 20.0]);
        assert_eq!(cmp.best_b, vec![0.2, 40.0]);
    }
}
