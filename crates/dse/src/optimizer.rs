//! Guided multi-objective exploration of the custom design space: an
//! NSGA-II-style evolutionary optimizer running entirely on the summary
//! fast lane.
//!
//! The paper's Use Case 3 samples its ~97-billion-design space at random;
//! with the fast lane evaluating ~100k designs/s the binding constraint
//! becomes *search quality*, not evaluation cost. This module turns the
//! explorer into a guided optimizer:
//!
//! * **Objectives** are any subset of [`Metric`] (the paper's four plus
//!   [`Metric::Energy`]), ranked by non-dominated sorting with crowding
//!   distance — the standard NSGA-II machinery.
//! * **Variation** uses the [`CustomSpace::mutate`] /
//!   [`CustomSpace::crossover`] operators: head-length shifts and
//!   tail-boundary moves, the natural neighborhood of the
//!   Hybrid-head/Segmented-tail encoding.
//! * **Determinism**: the search runs as an island model. Each island owns
//!   an independent counter-derived RNG stream
//!   (`stream_seed(seed, island)`), evolves serially, and exchanges elite
//!   migrants along a ring at fixed epoch boundaries. Threads parallelize
//!   *across* islands only, so any `--workers` count yields bit-identical
//!   Pareto fronts — the same contract every `par_*` sweep in this crate
//!   honors.
//! * **Budget**: a total evaluation-attempt budget is split evenly across
//!   islands up front (again worker-invariant). Every builder attempt —
//!   feasible or infeasible — costs one unit, so guided-vs-random
//!   comparisons at equal budget are fair. Designs already evaluated by an
//!   island are served from its memo and cost nothing.
//!
//! Every feasible evaluation is offered to a per-island archive
//! ([`ParetoFront`]); the final front is the deterministic merge of all
//! island archives.

use std::time::{Duration, Instant};

use mccm_arch::ArchError;
use mccm_core::{EvalScratch, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ExploreError;
use crate::explorer::{CustomPoint, Explorer};
use crate::pareto::{dominates, ParetoFront};
use crate::sampler::{sample_attempt, stream_seed};
use crate::segcache::{CacheStats, DeltaContext, DesignKey, DesignMemo, SegCache};
use crate::space::{CustomDesign, CustomSpace};
use mccm_core::CancelToken;

/// Configuration of [`Explorer::optimize`].
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Objectives to minimize/maximize (per [`Metric::higher_is_better`]).
    pub metrics: Vec<Metric>,
    /// Total evaluation-attempt budget across all islands. Every builder
    /// attempt (feasible or infeasible) costs one unit; memoized re-visits
    /// of a design an island has already evaluated are free.
    pub budget: u64,
    /// Population size per island.
    pub population: usize,
    /// Independent islands (the unit of parallelism).
    pub islands: usize,
    /// Base RNG seed; the full search is a pure function of the config.
    pub seed: u64,
    /// Generations between migration epochs.
    pub migration_interval: usize,
    /// Elite designs each island sends around the ring per epoch.
    pub migrants: usize,
    /// Probability that an offspring is produced by crossover before
    /// mutation (otherwise mutation of a tournament winner alone).
    pub crossover_prob: f64,
    /// Largest depth-first fuse depth the search may assign to tail CEs
    /// (the schedule axis of [`CustomSpace`]). `1` — the default — keeps
    /// the search layer-by-layer only, reproducing pre-schedule runs
    /// exactly; `d ≥ 2` lets the optimizer trade fuse depth against the
    /// other axes.
    pub max_fuse_depth: usize,
    /// Evaluate offspring through the **segment-cost delta path**
    /// ([`Explorer::custom_summary_delta`]): per-island caches of per-CE
    /// segment costs let a design whose segments were all seen before be
    /// recombined without an accelerator build or a block-model core run.
    /// Bit-identical to full evaluation by the `delta ≡ full ≡ rich`
    /// invariant, so this is purely a throughput knob (on by default);
    /// `false` restores whole-design evaluation for A/B verification.
    pub delta_eval: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            metrics: Metric::WITH_ENERGY.to_vec(),
            budget: 10_000,
            population: 48,
            islands: 4,
            seed: 1,
            migration_interval: 8,
            migrants: 4,
            crossover_prob: 0.9,
            max_fuse_depth: 1,
            delta_eval: true,
        }
    }
}

impl OptimizerConfig {
    /// Replaces the objective set.
    pub fn with_metrics(mut self, metrics: &[Metric]) -> Self {
        self.metrics = metrics.to_vec();
        self
    }

    /// Replaces the total evaluation budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the per-island population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Replaces the island count.
    pub fn with_islands(mut self, islands: usize) -> Self {
        self.islands = islands;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the generations-per-migration-epoch interval.
    pub fn with_migration_interval(mut self, generations: usize) -> Self {
        self.migration_interval = generations;
        self
    }

    /// Replaces the per-epoch migrant count.
    pub fn with_migrants(mut self, migrants: usize) -> Self {
        self.migrants = migrants;
        self
    }

    /// Replaces the crossover probability.
    pub fn with_crossover_prob(mut self, prob: f64) -> Self {
        self.crossover_prob = prob;
        self
    }

    /// Replaces the schedule axis' largest fuse depth (`1` = off).
    pub fn with_max_fuse_depth(mut self, max_fuse_depth: usize) -> Self {
        self.max_fuse_depth = max_fuse_depth;
        self
    }

    /// Enables or disables the segment-cost delta evaluation path.
    pub fn with_delta_eval(mut self, delta_eval: bool) -> Self {
        self.delta_eval = delta_eval;
        self
    }

    /// Checks the configuration is runnable — the typed pre-flight check
    /// machine-supplied configs (scenario files, request payloads) go
    /// through before [`Explorer::optimize`], whose own guards are
    /// panics reserved for programmer error.
    ///
    /// # Errors
    ///
    /// [`ExploreError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ExploreError> {
        let fail = |detail: String| Err(ExploreError::BadConfig { detail });
        if self.metrics.is_empty() {
            return fail("metric set is empty".into());
        }
        if self.population < 4 {
            return fail(format!(
                "population must be at least 4, got {}",
                self.population
            ));
        }
        if self.islands == 0 {
            return fail("islands must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return fail(format!(
                "crossover_prob must be in [0, 1], got {}",
                self.crossover_prob
            ));
        }
        if self.max_fuse_depth == 0 {
            return fail("max_fuse_depth must be at least 1 (1 = layer-by-layer only)".into());
        }
        Ok(())
    }
}

/// Result of a guided optimization run.
#[derive(Debug, Clone)]
pub struct GuidedFront {
    /// The non-dominated designs over the configured metrics, in
    /// deterministic order (best first on the first metric, notation as
    /// the tie-break).
    pub points: Vec<CustomPoint>,
    /// The objective set the front is defined over.
    pub metrics: Vec<Metric>,
    /// Evaluation attempts actually spent (≤ the configured budget).
    pub evaluations: u64,
    /// Feasible designs among them.
    pub feasible: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Whether the search was cancelled before exhausting its budget
    /// (see [`Explorer::optimize_par_cancellable`]). A cancelled front is
    /// a valid, mutually non-dominated front over everything evaluated so
    /// far — it is "partial" only in the sense that the remaining budget
    /// went unspent.
    pub cancelled: bool,
    /// Segment-cache and design-memo statistics summed across islands —
    /// all zeros when [`OptimizerConfig::delta_eval`] is off (memo
    /// counters still accumulate; the memo exists on both paths).
    pub cache: CacheStats,
}

impl GuidedFront {
    /// Best raw value of `metric` on the front (`None` for an empty
    /// front).
    pub fn best(&self, metric: Metric) -> Option<f64> {
        self.points
            .iter()
            .map(|p| metric.value(&p.summary))
            .reduce(|a, b| if metric.better(b, a) { b } else { a })
    }
}

/// One evaluated, feasible population member.
#[derive(Debug, Clone)]
struct Individual {
    design: CustomDesign,
    values: Vec<f64>,
}

/// One island's full evolutionary state. Everything an island does is a
/// pure function of its initial state (seed stream + budget share), which
/// is what makes the island model worker-invariant.
struct Island {
    rng: StdRng,
    /// Seed of this island's counter-based init-sampling stream.
    sample_stream: u64,
    next_attempt: u64,
    population: Vec<Individual>,
    archive: ParetoFront<CustomPoint>,
    /// Designs this island has already built, keyed by compact interned
    /// [`DesignKey`]s: `None` = infeasible. Bounded (insert-drop past the
    /// cap) — a dropped design simply costs budget again on a re-visit.
    memo: DesignMemo,
    /// This island's segment-cost cache (the delta path's working set).
    /// Cache state cannot change any evaluated value — cached and fresh
    /// segment costs are bit-identical — so per-island caches preserve
    /// worker invariance for free.
    seg_cache: SegCache,
    budget: u64,
    evaluations: u64,
    feasible: u64,
    initialized: bool,
}

impl Island {
    fn new(seed: u64, index: u64, budget: u64, metrics: &[Metric]) -> Self {
        Self {
            rng: StdRng::seed_from_u64(stream_seed(seed, index.wrapping_mul(2) + 1)),
            sample_stream: stream_seed(seed, index.wrapping_mul(2)),
            next_attempt: 0,
            population: Vec::new(),
            archive: ParetoFront::new(metrics),
            memo: DesignMemo::default(),
            seg_cache: SegCache::new(),
            budget,
            evaluations: 0,
            feasible: 0,
            initialized: false,
        }
    }

    /// Evaluates `design` through the fast lane, memoized — via the
    /// segment-cost delta path when `delta` carries a context, else the
    /// whole-design path. `Ok(None)` = infeasible (or out of budget for a
    /// new design).
    fn try_evaluate(
        &mut self,
        explorer: &Explorer,
        scratch: &mut EvalScratch,
        metrics: &[Metric],
        delta: Option<&DeltaContext>,
        design: &CustomDesign,
    ) -> Result<Option<Vec<f64>>, ArchError> {
        let key = DesignKey::of(design);
        if let Some(known) = self.memo.get(&key) {
            return Ok(known.clone());
        }
        if self.budget == 0 {
            return Ok(None);
        }
        self.budget -= 1;
        self.evaluations += 1;
        let outcome = match delta {
            Some(ctx) => {
                explorer.custom_summary_delta(design, ctx, &mut self.seg_cache, scratch)?
            }
            None => explorer.custom_summary_cell(design, scratch)?,
        };
        let values = outcome.map(|point| {
            let values: Vec<f64> = metrics.iter().map(|m| m.value(&point.summary)).collect();
            self.feasible += 1;
            self.archive.offer_with_values(point, values.clone());
            values
        });
        self.memo.insert(key, values.clone());
        Ok(values)
    }

    /// Fills the initial population from this island's counter-based
    /// sampling stream (the same generator behind
    /// [`Explorer::sample_custom_summaries`]).
    fn initialize(
        &mut self,
        explorer: &Explorer,
        scratch: &mut EvalScratch,
        space: &CustomSpace,
        metrics: &[Metric],
        delta: Option<&DeltaContext>,
        target: usize,
    ) -> Result<(), ArchError> {
        let attempt_cap = (target as u64).saturating_mul(64).max(1024);
        while self.population.len() < target && self.budget > 0 && self.next_attempt < attempt_cap {
            let design = sample_attempt(space, self.sample_stream, self.next_attempt);
            self.next_attempt += 1;
            if let Some(values) = self.try_evaluate(explorer, scratch, metrics, delta, &design)? {
                self.population.push(Individual { design, values });
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// One NSGA-II generation: tournament selection → crossover + mutation
    /// → environmental selection over parents ∪ offspring.
    // The per-epoch loop threads shared read-only search state plus the
    // optional delta context; bundling them into a struct would outlive
    // this one private call site.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        explorer: &Explorer,
        scratch: &mut EvalScratch,
        space: &CustomSpace,
        metrics: &[Metric],
        delta: Option<&DeltaContext>,
        mu: usize,
        crossover_prob: f64,
    ) -> Result<(), ArchError> {
        if self.population.len() < 2 || self.budget == 0 {
            return Ok(());
        }
        let values: Vec<&[f64]> = self
            .population
            .iter()
            .map(|i| i.values.as_slice())
            .collect();
        let (rank, crowd) = rank_and_crowding(&values, metrics);
        let n = self.population.len();
        let mut offspring: Vec<Individual> = Vec::with_capacity(mu);
        // Infeasible (or memo-hit infeasible) children make no progress;
        // bound the dry spell so a degenerate neighborhood cannot spin.
        let mut dry = 0usize;
        while offspring.len() < mu && self.budget > 0 && dry < 4 * mu {
            let p1 = tournament(&mut self.rng, n, &rank, &crowd);
            let child = if self.rng.random_bool(crossover_prob) {
                let p2 = tournament(&mut self.rng, n, &rank, &crowd);
                space.crossover(
                    &self.population[p1].design,
                    &self.population[p2].design,
                    &mut self.rng,
                )
            } else {
                self.population[p1].design.clone()
            };
            let child = space.mutate(&child, &mut self.rng);
            // Safety net: today's operators always emit members (asserted
            // in the space tests), so repair is an exact pass-through — it
            // exists so a future off-space operator costs one repaired
            // evaluation instead of a wasted budget draw. No RNG involved,
            // so the trajectory stays worker-invariant either way.
            let child = if space.contains(&child) {
                child
            } else {
                space.repair(&child)
            };
            match self.try_evaluate(explorer, scratch, metrics, delta, &child)? {
                Some(values) => {
                    offspring.push(Individual {
                        design: child,
                        values,
                    });
                    dry = 0;
                }
                None => dry += 1,
            }
        }
        let mut combined = std::mem::take(&mut self.population);
        combined.extend(offspring);
        self.population = environmental_select(combined, mu, metrics);
        Ok(())
    }

    /// The island's `count` elite members (rank-0 front, most-spread
    /// first) — the designs it exports at a migration epoch.
    fn emigrants(&self, count: usize, metrics: &[Metric]) -> Vec<Individual> {
        if self.population.is_empty() || count == 0 {
            return Vec::new();
        }
        let values: Vec<&[f64]> = self
            .population
            .iter()
            .map(|i| i.values.as_slice())
            .collect();
        let (rank, crowd) = rank_and_crowding(&values, metrics);
        let mut first_front: Vec<usize> = (0..self.population.len())
            .filter(|&i| rank[i] == 0)
            .collect();
        first_front.sort_by(|&a, &b| crowd[b].total_cmp(&crowd[a]).then_with(|| a.cmp(&b)));
        first_front
            .into_iter()
            .take(count)
            .map(|i| self.population[i].clone())
            .collect()
    }

    /// Absorbs migrants, then trims back to `mu` members (selection only —
    /// migrants arrive already evaluated, so immigration is free).
    fn receive(&mut self, migrants: Vec<Individual>, mu: usize, metrics: &[Metric]) {
        if migrants.is_empty() {
            return;
        }
        let mut combined = std::mem::take(&mut self.population);
        combined.extend(migrants);
        self.population = environmental_select(combined, mu, metrics);
    }
}

/// Fast non-dominated sort + crowding distance of a set of objective
/// vectors. Returns `(rank, crowding)` per index; rank 0 is the first
/// (best) front.
fn rank_and_crowding(values: &[&[f64]], metrics: &[Metric]) -> (Vec<usize>, Vec<f64>) {
    let n = values.len();
    let mut dominated_by = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(metrics, values[i], values[j]) {
                dominates_list[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(metrics, values[j], values[i]) {
                dominates_list[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut rank = vec![0usize; n];
    let mut crowd = vec![0.0f64; n];
    let mut front: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut level = 0usize;
    while !front.is_empty() {
        crowding_into(&front, values, metrics, &mut crowd);
        let mut next = Vec::new();
        for &i in &front {
            rank[i] = level;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable(); // deterministic front order
        front = next;
        level += 1;
    }
    (rank, crowd)
}

/// Crowding distance of one front, written into `crowd` at the front's
/// indices. Boundary points get `f64::INFINITY`.
fn crowding_into(front: &[usize], values: &[&[f64]], metrics: &[Metric], crowd: &mut [f64]) {
    for &i in front {
        crowd[i] = 0.0;
    }
    if front.len() <= 2 {
        for &i in front {
            crowd[i] = f64::INFINITY;
        }
        return;
    }
    let mut order: Vec<usize> = front.to_vec();
    for (m, _) in metrics.iter().enumerate() {
        order.sort_by(|&a, &b| {
            values[a][m]
                .total_cmp(&values[b][m])
                .then_with(|| a.cmp(&b))
        });
        let lo = values[order[0]][m];
        let hi = values[order[order.len() - 1]][m];
        crowd[order[0]] = f64::INFINITY;
        crowd[order[order.len() - 1]] = f64::INFINITY;
        if hi > lo {
            for w in 1..order.len() - 1 {
                let span = values[order[w + 1]][m] - values[order[w - 1]][m];
                crowd[order[w]] += span / (hi - lo);
            }
        }
    }
}

/// Binary tournament on (rank asc, crowding desc, index asc).
fn tournament(rng: &mut StdRng, n: usize, rank: &[usize], crowd: &[f64]) -> usize {
    let a = rng.random_range(0..n);
    let b = rng.random_range(0..n);
    if rank[a] != rank[b] {
        if rank[a] < rank[b] {
            a
        } else {
            b
        }
    } else if crowd[a] != crowd[b] {
        if crowd[a] > crowd[b] {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

/// NSGA-II environmental selection: fill by front rank; the cut front is
/// admitted by crowding distance (descending, index ascending) — all
/// deterministic.
fn environmental_select(
    combined: Vec<Individual>,
    mu: usize,
    metrics: &[Metric],
) -> Vec<Individual> {
    if combined.len() <= mu {
        return combined;
    }
    let values: Vec<&[f64]> = combined.iter().map(|i| i.values.as_slice()).collect();
    let (rank, crowd) = rank_and_crowding(&values, metrics);
    let mut order: Vec<usize> = (0..combined.len()).collect();
    order.sort_by(|&a, &b| {
        rank[a]
            .cmp(&rank[b])
            .then_with(|| crowd[b].total_cmp(&crowd[a]))
            .then_with(|| a.cmp(&b))
    });
    order.truncate(mu);
    order.sort_unstable(); // keep survivors in their stable arrival order
    let mut keep: Vec<Option<Individual>> = combined.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|i| keep[i].take().expect("selection indices are unique"))
        .collect()
}

impl Explorer {
    /// Guided multi-objective search over the paper's custom space (serial
    /// twin of [`Self::optimize_par`]).
    ///
    /// # Errors
    ///
    /// [`ExploreError::Arch`] on any real builder fault (infeasible
    /// designs are handled, not errors).
    ///
    /// # Panics
    ///
    /// On degenerate configs: empty metric set, `population < 4`, or
    /// `islands == 0`.
    pub fn optimize(&self, config: &OptimizerConfig) -> Result<GuidedFront, ExploreError> {
        self.optimize_par(config, 1)
    }

    /// Guided multi-objective search with `workers` threads (`0` = one per
    /// core). Threads parallelize across islands; the returned front is
    /// **bit-identical for any worker count** — the same determinism
    /// contract as every `par_*` sweep.
    ///
    /// # Errors
    ///
    /// As [`Self::optimize`].
    ///
    /// # Panics
    ///
    /// As [`Self::optimize`].
    pub fn optimize_par(
        &self,
        config: &OptimizerConfig,
        workers: usize,
    ) -> Result<GuidedFront, ExploreError> {
        self.optimize_par_cancellable(config, workers, &CancelToken::new())
    }

    /// [`Self::optimize_par`] with a cooperative [`CancelToken`], polled
    /// at generation and epoch boundaries. When the token fires the
    /// search stops early and returns the merged front of everything
    /// evaluated so far with [`GuidedFront::cancelled`] set — a partial
    /// but honest result, never an error.
    ///
    /// A token that never fires changes nothing: the run takes exactly
    /// the un-cancelled code path, so results stay bit-identical to
    /// [`Self::optimize_par`] for any worker count.
    ///
    /// # Errors
    ///
    /// As [`Self::optimize`].
    ///
    /// # Panics
    ///
    /// As [`Self::optimize`].
    pub fn optimize_par_cancellable(
        &self,
        config: &OptimizerConfig,
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<GuidedFront, ExploreError> {
        assert!(
            !config.metrics.is_empty(),
            "optimizer needs at least one metric"
        );
        assert!(config.population >= 4, "population must be at least 4");
        assert!(config.islands >= 1, "need at least one island");
        let start = Instant::now();
        let space = self
            .paper_space()
            .with_max_fuse_depth(config.max_fuse_depth);
        let metrics = config.metrics.clone();
        let k = config.islands;
        let share = config.budget / k as u64;
        let extra = usize::try_from(config.budget % k as u64)
            .expect("remainder is below the island count, a usize");
        let mut islands: Vec<Island> = (0..k)
            .map(|i| {
                let budget = share + u64::from(i < extra);
                Island::new(config.seed, i as u64, budget, &metrics)
            })
            .collect();
        // One delta context per run: sweep-invariant prefix sums and
        // board terms, shared read-only across all islands and workers.
        let delta_ctx = config.delta_eval.then(|| DeltaContext::new(self));
        let delta = delta_ctx.as_ref();

        let epoch_generations = config.migration_interval.max(1);
        loop {
            let spent_before: u64 = islands.iter().map(|i| i.evaluations).sum();
            if !islands.iter().any(|i| i.budget > 0) || cancel.is_cancelled() {
                break;
            }
            islands = self.run_epoch(
                islands,
                &space,
                &metrics,
                config,
                delta,
                epoch_generations,
                workers,
                cancel,
            )?;
            let spent_after: u64 = islands.iter().map(|i| i.evaluations).sum();
            if spent_after == spent_before {
                // No island can make progress any more (e.g. populations
                // too small to breed) — stop instead of spinning.
                break;
            }
            // Ring migration at the epoch boundary (free: selection only).
            if k > 1 && config.migrants > 0 {
                let picks: Vec<Vec<Individual>> = islands
                    .iter()
                    .map(|isl| isl.emigrants(config.migrants, &metrics))
                    .collect();
                for (i, pick) in picks.into_iter().enumerate() {
                    islands[(i + 1) % k].receive(pick, config.population, &metrics);
                }
            }
        }

        let mut merged = ParetoFront::new(&metrics);
        let mut evaluations = 0u64;
        let mut feasible = 0u64;
        let mut cache = CacheStats::default();
        for isl in islands {
            evaluations += isl.evaluations;
            feasible += isl.feasible;
            cache.absorb(&isl.seg_cache.stats());
            cache.absorb(&isl.memo.stats());
            merged.merge(isl.archive);
        }
        let mut points = merged.into_items();
        let lead = metrics[0];
        points.sort_by(|a, b| {
            let (va, vb) = (lead.value(&a.summary), lead.value(&b.summary));
            let ord = if lead.higher_is_better() {
                vb.total_cmp(&va)
            } else {
                va.total_cmp(&vb)
            };
            ord.then_with(|| a.summary.notation.cmp(&b.summary.notation))
        });
        // Two islands can discover the same design independently; equal
        // points never dominate each other, so the merge keeps both. One
        // copy per design is enough for the caller (the sort above parks
        // duplicates adjacently).
        points.dedup_by(|a, b| a.summary.notation == b.summary.notation);
        Ok(GuidedFront {
            points,
            metrics,
            evaluations,
            feasible,
            elapsed: start.elapsed(),
            cancelled: cancel.is_cancelled(),
            cache,
        })
    }

    /// Runs one epoch (`generations` NSGA-II steps) on every island,
    /// chunked across `workers` threads. Island evolution is a pure
    /// function of island state, so the chunking cannot change results;
    /// the cancel token is polled between generations so an expiring
    /// request stops within one generation's work per island.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one search
    fn run_epoch(
        &self,
        islands: Vec<Island>,
        space: &CustomSpace,
        metrics: &[Metric],
        config: &OptimizerConfig,
        delta: Option<&DeltaContext>,
        generations: usize,
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<Vec<Island>, ExploreError> {
        let run_one = |mut isl: Island, scratch: &mut EvalScratch| -> Result<Island, ArchError> {
            if cancel.is_cancelled() {
                return Ok(isl);
            }
            if !isl.initialized {
                isl.initialize(self, scratch, space, metrics, delta, config.population)?;
            }
            for _ in 0..generations {
                if cancel.is_cancelled() {
                    break;
                }
                isl.step(
                    self,
                    scratch,
                    space,
                    metrics,
                    delta,
                    config.population,
                    config.crossover_prob,
                )?;
            }
            Ok(isl)
        };

        let workers = crate::parallel::resolve_workers(workers).min(islands.len().max(1));
        if workers <= 1 {
            let mut scratch = EvalScratch::new();
            let mut out = Vec::with_capacity(islands.len());
            for isl in islands {
                out.push(run_one(isl, &mut scratch)?);
            }
            return Ok(out);
        }
        let chunks = crate::enumerate::partition(islands.len() as u128, workers);
        let mut slots: Vec<Option<Island>> = islands.into_iter().map(Some).collect();
        let chunk_results: Vec<Vec<Result<Island, ArchError>>> = std::thread::scope(|s| {
            let run_one = &run_one;
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(lo, hi)| {
                    let chunk: Vec<Island> = slots[lo as usize..hi as usize]
                        .iter_mut()
                        .map(|slot| slot.take().expect("island taken once"))
                        .collect();
                    s.spawn(move || {
                        let mut scratch = EvalScratch::new();
                        chunk
                            .into_iter()
                            .map(|isl| run_one(isl, &mut scratch))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("optimizer worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(slots.len());
        for r in chunk_results.into_iter().flatten() {
            out.push(r?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn front_key(f: &GuidedFront) -> Vec<(String, Vec<u64>)> {
        f.points
            .iter()
            .map(|p| {
                (
                    p.summary.notation.clone(),
                    f.metrics
                        .iter()
                        .map(|m| m.value(&p.summary).to_bits())
                        .collect(),
                )
            })
            .collect()
    }

    fn small_config() -> OptimizerConfig {
        OptimizerConfig::default()
            .with_budget(600)
            .with_population(16)
            .with_islands(3)
            .with_seed(9)
    }

    #[test]
    fn validate_rejects_degenerate_configs_with_the_field_named() {
        assert!(OptimizerConfig::default().validate().is_ok());
        assert!(small_config().validate().is_ok());
        let cases: [(OptimizerConfig, &str); 4] = [
            (OptimizerConfig::default().with_metrics(&[]), "metric"),
            (OptimizerConfig::default().with_population(3), "population"),
            (OptimizerConfig::default().with_islands(0), "islands"),
            (
                OptimizerConfig::default().with_crossover_prob(1.5),
                "crossover_prob",
            ),
        ];
        for (cfg, field) in cases {
            match cfg.validate() {
                Err(ExploreError::BadConfig { detail }) => {
                    assert!(detail.contains(field), "{detail} should name {field}");
                }
                other => panic!("expected BadConfig naming {field}, got {other:?}"),
            }
        }
        // NaN probabilities are out of range too.
        assert!(OptimizerConfig::default()
            .with_crossover_prob(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn optimize_finds_a_nonempty_front_within_budget() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = small_config();
        let f = e.optimize(&cfg).unwrap();
        assert!(!f.points.is_empty());
        assert!(f.evaluations <= cfg.budget);
        assert!(f.feasible > 0 && f.feasible <= f.evaluations);
        // The front really is mutually non-dominated.
        for a in &f.points {
            for b in &f.points {
                let va: Vec<f64> = f.metrics.iter().map(|m| m.value(&a.summary)).collect();
                let vb: Vec<f64> = f.metrics.iter().map(|m| m.value(&b.summary)).collect();
                assert!(!dominates(&f.metrics, &va, &vb) || a.summary == b.summary);
            }
        }
    }

    #[test]
    fn optimize_is_worker_invariant_and_deterministic() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = small_config();
        let serial = e.optimize(&cfg).unwrap();
        let rerun = e.optimize(&cfg).unwrap();
        assert_eq!(
            front_key(&serial),
            front_key(&rerun),
            "same config must reproduce"
        );
        for workers in [2usize, 3, 8] {
            let par = e.optimize_par(&cfg, workers).unwrap();
            assert_eq!(
                front_key(&par),
                front_key(&serial),
                "front diverged at workers={workers}"
            );
            assert_eq!(par.evaluations, serial.evaluations);
            assert_eq!(par.feasible, serial.feasible);
        }
    }

    #[test]
    fn pre_cancelled_search_returns_an_empty_labelled_front() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cancel = CancelToken::new();
        cancel.cancel();
        let f = e
            .optimize_par_cancellable(&small_config(), 2, &cancel)
            .unwrap();
        assert!(f.cancelled, "a pre-fired token must label the front");
        assert_eq!(f.evaluations, 0, "no work after cancellation");
        assert!(f.points.is_empty());
    }

    #[test]
    fn uncancelled_token_is_bit_identical_to_the_plain_entry_point() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = small_config();
        let plain = e.optimize_par(&cfg, 3).unwrap();
        let tokened = e
            .optimize_par_cancellable(&cfg, 3, &CancelToken::new())
            .unwrap();
        assert!(!plain.cancelled && !tokened.cancelled);
        assert_eq!(front_key(&plain), front_key(&tokened));
        assert_eq!(plain.evaluations, tokened.evaluations);
    }

    #[test]
    fn schedule_axis_run_is_worker_invariant_too() {
        // The schedule-extended space must keep the worker-count
        // bit-identity guarantee: islands advance on counter-based streams,
        // so adding an axis only changes *what* is drawn, never *who*
        // draws it.
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = small_config().with_max_fuse_depth(3);
        let serial = e.optimize(&cfg).unwrap();
        assert_eq!(front_key(&serial), front_key(&e.optimize(&cfg).unwrap()));
        for workers in [2usize, 5] {
            let par = e.optimize_par(&cfg, workers).unwrap();
            assert_eq!(
                front_key(&par),
                front_key(&serial),
                "schedule-extended front diverged at workers={workers}"
            );
        }
        // And the axis must actually change the search relative to the
        // layer-by-layer-only run under the same seed.
        let lbl = e.optimize(&small_config()).unwrap();
        assert_ne!(front_key(&serial), front_key(&lbl));
    }

    #[test]
    fn max_fuse_depth_zero_is_rejected_with_the_field_named() {
        match small_config().with_max_fuse_depth(0).validate() {
            Err(ExploreError::BadConfig { detail }) => {
                assert!(detail.contains("max_fuse_depth"), "{detail}");
            }
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn delta_evaluation_is_trajectory_neutral() {
        // The delta path must be invisible to the search: same front, same
        // budget accounting, for any worker count — only the cache
        // counters may differ.
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        for cfg in [small_config(), small_config().with_max_fuse_depth(3)] {
            let full = e.optimize(&cfg.clone().with_delta_eval(false)).unwrap();
            let delta = e.optimize(&cfg).unwrap();
            assert_eq!(front_key(&full), front_key(&delta));
            assert_eq!(full.evaluations, delta.evaluations);
            assert_eq!(full.feasible, delta.feasible);
            let par = e.optimize_par(&cfg, 3).unwrap();
            assert_eq!(front_key(&par), front_key(&full));
            // The delta run actually exercised the cache (the memo absorbs
            // exact design revisits, so in-search hits come from *fresh*
            // designs sharing segments with earlier ones); the full run
            // never touched it.
            assert!(delta.cache.seg_hits > 0, "{:?}", delta.cache);
            assert!(delta.cache.seg_misses > 0);
            assert_eq!(full.cache.seg_hits + full.cache.seg_misses, 0);
            // Both paths use the design memo.
            assert!(delta.cache.memo_hits > 0 && full.cache.memo_hits > 0);
        }
    }

    #[test]
    fn every_budget_unit_lands_on_a_feasible_design_on_a_roomy_board() {
        // Budget-accounting regression for the repair hook: the operators
        // only emit space members, every member materializes, and on a
        // board with DSPs ≥ max_ces every materialized design builds — so
        // no evaluation attempt may be wasted on an infeasible design.
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let f = e.optimize(&small_config()).unwrap();
        assert!(f.evaluations > 0);
        assert_eq!(
            f.feasible, f.evaluations,
            "budget leaked to infeasible offspring"
        );
    }

    #[test]
    fn different_seeds_explore_differently() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let a = e.optimize(&small_config().with_seed(1)).unwrap();
        let b = e.optimize(&small_config().with_seed(2)).unwrap();
        assert_ne!(front_key(&a), front_key(&b));
    }

    #[test]
    fn single_metric_search_climbs() {
        // With one objective the optimizer degenerates to a (μ+λ) search;
        // its best design must at least match its own random init stream's
        // best at the same budget.
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = small_config()
            .with_metrics(&[Metric::Throughput])
            .with_islands(2);
        let f = e.optimize(&cfg).unwrap();
        // A single-objective front holds only exactly-tied best designs.
        let guided_best = f.best(Metric::Throughput).unwrap();
        for p in &f.points {
            assert_eq!(p.summary.throughput_fps, guided_best);
        }
        let (random, _) = e.sample_custom_summaries(64, 9).unwrap();
        let random_best = random
            .iter()
            .map(|p| p.summary.throughput_fps)
            .fold(0.0f64, f64::max);
        assert!(
            guided_best >= random_best * 0.95,
            "guided {guided_best} vs random {random_best}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one metric")]
    fn empty_metric_set_is_rejected() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let cfg = OptimizerConfig {
            metrics: vec![],
            ..OptimizerConfig::default()
        };
        let _ = e.optimize(&cfg);
    }
}
