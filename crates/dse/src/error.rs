//! Error type for design-space exploration.

use std::error::Error;
use std::fmt;

use mccm_arch::ArchError;

/// Error produced while exploring a design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// Sampling could not find enough feasible designs within the attempt
    /// budget — the space (for this CNN/board pair) is mostly or entirely
    /// infeasible. The old code spun forever here.
    AttemptsExhausted {
        /// Feasible design points requested.
        wanted: usize,
        /// Feasible design points actually found.
        got: usize,
        /// Sampling attempts spent.
        attempts: u64,
    },
    /// An exhaustive evaluation was requested for a space with more
    /// designs than the given limit (or more than `usize::MAX`).
    SpaceTooLarge {
        /// Exact space cardinality (saturating at `u128::MAX`).
        size: u128,
        /// The configured exhaustive-evaluation limit.
        limit: u128,
    },
    /// A design failed to build for a reason other than infeasibility —
    /// a real builder/spec bug that must not be masked as "infeasible".
    Arch(ArchError),
    /// An exploration/optimizer configuration is unusable (empty metric
    /// set, degenerate population, zero islands, an out-of-range
    /// probability) — the typed twin of the panics `optimize` reserves
    /// for programmer error, for machine-supplied configs.
    BadConfig {
        /// What is wrong, naming the offending field.
        detail: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AttemptsExhausted {
                wanted,
                got,
                attempts,
            } => write!(
                f,
                "sampling exhausted {attempts} attempts with only {got}/{wanted} feasible \
                 designs found — the space looks (mostly) infeasible for this CNN/board pair"
            ),
            Self::SpaceTooLarge { size, limit } => write!(
                f,
                "space holds {size} designs, beyond the exhaustive-evaluation limit of {limit}"
            ),
            Self::Arch(e) => write!(f, "design evaluation failed: {e}"),
            Self::BadConfig { detail } => write!(f, "bad exploration config: {detail}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ExploreError {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}
