//! Seeded random sampling of the custom design space.

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::{Rng, SeedableRng};

use crate::space::{CustomDesign, CustomSpace};

/// Uniform-ish random sampler over a [`CustomSpace`] (CE count and head
/// length uniform, boundaries uniform without replacement). Deterministic
/// per seed.
#[derive(Debug, Clone)]
pub struct CustomSampler {
    space: CustomSpace,
    rng: StdRng,
}

impl CustomSampler {
    /// Creates a sampler with a fixed seed.
    ///
    /// # Panics
    ///
    /// If the space is degenerate: fewer than 2 layers (a design needs a
    /// head layer and a tail layer), `min_ces < 2`, an empty CE range, or
    /// `min_ces > layers` (no design can use more CEs than layers).
    pub fn new(space: CustomSpace, seed: u64) -> Self {
        assert!(
            space.layers >= 2,
            "custom space needs >= 2 layers, got {}",
            space.layers
        );
        assert!(
            space.min_ces >= 2,
            "custom space needs min_ces >= 2, got {}",
            space.min_ces
        );
        assert!(
            space.min_ces <= space.max_ces,
            "empty CE range {}..={}",
            space.min_ces,
            space.max_ces
        );
        assert!(
            space.min_ces <= space.layers,
            "min_ces {} exceeds layer count {}: the space is empty",
            space.min_ces,
            space.layers
        );
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next design.
    pub fn sample(&mut self) -> CustomDesign {
        draw_design(&self.space, &mut self.rng)
    }

    /// Draws `count` designs.
    pub fn sample_many(&mut self, count: usize) -> Vec<CustomDesign> {
        (0..count).map(|_| self.sample()).collect()
    }
}

/// Draws one design from `space` using `rng` (validity of `space` is the
/// caller's responsibility — see [`CustomSampler::new`]'s panics).
fn draw_design(space: &CustomSpace, rng: &mut StdRng) -> CustomDesign {
    let n = space.layers;
    loop {
        let k = rng.random_range(space.min_ces..=space.max_ces);
        // Clamp the head draw so models with fewer layers than the CE
        // range still leave at least one tail layer (h <= n - 1).
        let h = rng.random_range(1..=(k - 1).min(n - 1));
        let tail_segments = k - h;
        // Interior boundary positions in (h, n).
        let n_positions = n - h - 1;
        if n_positions + 1 < tail_segments {
            continue; // not enough layers for that many segments
        }
        let mut ends: Vec<usize> = index_sample(rng, n_positions, tail_segments - 1)
            .into_iter()
            .map(|i| h + 1 + i)
            .collect();
        ends.sort_unstable();
        ends.push(n);
        // The schedule draw only happens when the axis is on, so
        // `max_fuse_depth = 1` spaces consume the exact RNG stream of the
        // pre-schedule sampler — seeded point sets are unchanged.
        let schedule = if space.schedule_choices() > 1 {
            CustomSpace::schedule_at(rng.random_range(0..space.schedule_choices()))
        } else {
            mccm_arch::Schedule::LayerByLayer
        };
        return CustomDesign {
            schedule,
            head_layers: h,
            tail_ends: ends,
        };
    }
}

/// Draws the design of one *attempt index* from a counter-based RNG
/// stream: attempt `a` under `seed` always yields the same design, no
/// matter which worker (or how many workers) processes it. This is what
/// makes sharded parallel sampling reproduce the serial point set
/// exactly — the point set is a pure function of `(seed, attempt)`,
/// independent of thread scheduling.
pub fn sample_attempt(space: &CustomSpace, seed: u64, attempt: u64) -> CustomDesign {
    let mut rng = StdRng::seed_from_u64(attempt_seed(seed, attempt));
    draw_design(space, &mut rng)
}

/// Mixes `(seed, attempt)` into one well-distributed 64-bit RNG seed
/// (two rounds of the SplitMix64 finalizer).
fn attempt_seed(seed: u64, attempt: u64) -> u64 {
    splitmix(seed ^ splitmix(attempt.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Derives the seed of an independent, named RNG stream (island index,
/// shard id, …) from a base seed — the same SplitMix64 mixing behind
/// [`sample_attempt`]. Streams for different ids are decorrelated, and the
/// mapping is pure, so any structure built on stream ids is reproducible
/// regardless of which thread consumes which stream.
pub(crate) fn stream_seed(seed: u64, stream: u64) -> u64 {
    attempt_seed(seed, stream)
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Iterator for CustomSampler {
    type Item = CustomDesign;

    fn next(&mut self) -> Option<CustomDesign> {
        Some(self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;

    #[test]
    fn deterministic_per_seed() {
        let space = CustomSpace::paper_range(74);
        let a = CustomSampler::new(space, 42).sample_many(50);
        let b = CustomSampler::new(space, 42).sample_many(50);
        assert_eq!(a, b);
        let c = CustomSampler::new(space, 43).sample_many(50);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_are_valid_designs() {
        let m = zoo::xception();
        let space = CustomSpace::paper_range(74);
        for d in CustomSampler::new(space, 7).sample_many(200) {
            let k = d.ce_count();
            assert!((2..=11).contains(&k), "{d:?}");
            assert!(d.head_layers >= 1);
            assert_eq!(*d.tail_ends.last().unwrap(), 74);
            // Must materialize without error.
            d.to_spec(&m).unwrap();
        }
    }

    #[test]
    fn covers_the_ce_range() {
        let space = CustomSpace::paper_range(74);
        let counts: std::collections::HashSet<usize> = CustomSampler::new(space, 1)
            .sample_many(500)
            .iter()
            .map(CustomDesign::ce_count)
            .collect();
        for k in 2..=11 {
            assert!(counts.contains(&k), "CE count {k} never sampled");
        }
    }

    #[test]
    fn schedule_axis_sampling_covers_every_choice() {
        let m = zoo::xception();
        let space = CustomSpace::paper_range(74).with_max_fuse_depth(3);
        let mut schedules = std::collections::HashSet::new();
        for d in CustomSampler::new(space, 11).sample_many(300) {
            assert!(space.contains(&d), "{d:?}");
            d.to_spec(&m).unwrap();
            schedules.insert(d.schedule);
        }
        use mccm_arch::Schedule;
        for want in [
            Schedule::LayerByLayer,
            Schedule::DepthFirst { fuse_depth: 2 },
            Schedule::DepthFirst { fuse_depth: 3 },
        ] {
            assert!(schedules.contains(&want), "{want:?} never sampled");
        }
    }

    #[test]
    fn axis_off_sampling_matches_the_pre_schedule_stream() {
        // With max_fuse_depth = 1 the schedule draw is skipped entirely, so
        // the structural part of every design must match the axis-on space
        // only up to the point where the extra draw perturbs the stream —
        // and more importantly the axis-off stream is self-consistent with
        // sample_attempt (a pure function used by the parallel samplers).
        let space = CustomSpace::paper_range(74);
        for attempt in 0..200u64 {
            let d = sample_attempt(&space, 21, attempt);
            assert_eq!(d.schedule, mccm_arch::Schedule::LayerByLayer);
        }
    }

    #[test]
    fn small_models_sample_too() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 6,
            min_ces: 2,
            max_ces: 5,
        };
        for d in CustomSampler::new(space, 3).sample_many(100) {
            assert!(d.ce_count() <= 5);
            assert!(*d.tail_ends.last().unwrap() == 6);
        }
    }

    #[test]
    fn paper_range_on_models_smaller_than_the_ce_range() {
        // Regression: with fewer layers than max_ces the head draw used to
        // underflow `n - h - 1` and panic (or, in release, feed a wrapped
        // length to the index sampler).
        for layers in [3usize, 5, 9, 10] {
            let space = CustomSpace::paper_range(layers);
            for d in CustomSampler::new(space, 0).sample_many(200) {
                assert!(d.head_layers >= 1);
                assert!(d.head_layers < layers, "head must leave a tail layer");
                assert_eq!(*d.tail_ends.last().unwrap(), layers);
                assert!(d.ce_count() <= space.max_ces);
            }
        }
    }

    #[test]
    fn attempt_sampling_is_a_pure_function_of_seed_and_attempt() {
        let space = CustomSpace::paper_range(74);
        for attempt in [0u64, 1, 7, 1_000_003] {
            let a = sample_attempt(&space, 42, attempt);
            let b = sample_attempt(&space, 42, attempt);
            assert_eq!(a, b);
        }
        // Different attempts and different seeds give different streams.
        assert_ne!(sample_attempt(&space, 42, 0), sample_attempt(&space, 42, 1));
        assert_ne!(sample_attempt(&space, 42, 0), sample_attempt(&space, 43, 0));
    }

    #[test]
    fn attempt_samples_are_valid_designs() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 6,
            min_ces: 2,
            max_ces: 5,
        };
        for a in 0..300u64 {
            let d = sample_attempt(&space, 9, a);
            assert!((2..=5).contains(&d.ce_count()));
            assert!(d.head_layers >= 1 && d.head_layers < 6);
            assert_eq!(*d.tail_ends.last().unwrap(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "min_ces >= 2")]
    fn degenerate_min_ces_rejected_at_construction() {
        CustomSampler::new(
            CustomSpace {
                max_fuse_depth: 1,
                layers: 10,
                min_ces: 1,
                max_ces: 4,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "the space is empty")]
    fn empty_space_rejected_instead_of_spinning() {
        // min_ces > layers means every draw is infeasible; without the
        // construction check sample() would loop forever.
        CustomSampler::new(
            CustomSpace {
                max_fuse_depth: 1,
                layers: 4,
                min_ces: 6,
                max_ces: 11,
            },
            0,
        );
    }
}
