//! Parallel, sharded design-space sweeps over `std::thread::scope`.
//!
//! Every `par_*` entry point is **worker-count invariant**: it returns
//! exactly the designs (in exactly the order) its serial twin returns.
//! Three mechanisms make that hold:
//!
//! * sampled sweeps draw each design from a counter-based RNG stream
//!   ([`crate::sample_attempt`]) — the design of attempt `a` is a pure
//!   function of `(seed, a)`, so sharding attempts across threads cannot
//!   change the point set, only who evaluates it;
//! * attempts are processed in contiguous batches, and the result is the
//!   first `count` feasible designs *in attempt order* — overshoot from a
//!   batch is discarded deterministically;
//! * exhaustive sweeps shard the space by contiguous lexicographic rank
//!   ranges ([`CustomSpace::shards`]) and concatenate shard results in
//!   rank order.
//!
//! Worker threads accumulate lean [`CustomPoint`]s and local
//! [`ParetoFront`]s; fronts are merged at the end ([`par_pareto_indices`])
//! — the front of a union is the merge of the parts' fronts.

use std::time::{Duration, Instant};

use mccm_arch::{templates, ArchError};
use mccm_core::{EvalScratch, Metric, MetricSource};

use crate::error::ExploreError;
use crate::explorer::{default_max_attempts, BaselinePoint, CustomPoint, DesignPoint, Explorer};
use crate::pareto::ParetoFront;
use crate::sampler::{sample_attempt, CustomSampler};
use crate::space::{CustomDesign, CustomSpace};
use mccm_core::CancelToken;

/// Largest space [`Explorer::par_evaluate_space`] will walk exhaustively.
pub const EXHAUSTIVE_LIMIT: u128 = 1 << 20;

/// The per-design evaluation hook of [`sample_engine`]: `Ok(Some(T))`
/// feasible, `Ok(None)` infeasible (skipped), `Err` a real fault. The
/// [`EvalScratch`] is per-worker (one per thread, one for the serial
/// path), so summary-lane hooks evaluate without steady-state allocation;
/// full-lane hooks simply ignore it.
type EvalFn<'a, T> =
    &'a (dyn Fn(&Explorer, &CustomDesign, &mut EvalScratch) -> Result<Option<T>, ArchError> + Sync);

/// Resolves a worker-count knob: `0` means "one per available core".
/// Results are worker-count invariant, so the knob is silently capped at
/// 4× the available cores — an absurd `--workers` value must not make
/// thread spawning itself the failure mode.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    if workers == 0 {
        cores
    } else {
        workers.min(cores.saturating_mul(4)).max(1)
    }
}

/// Splits `len` items into at most `parts` contiguous near-equal chunks
/// (the same partition [`CustomSpace::shards`] applies to rank ranges).
fn chunk_bounds(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let bound = |v: u128| usize::try_from(v).expect("partition bounds of a slice length fit usize");
    crate::enumerate::partition(len as u128, parts)
        .into_iter()
        .map(|(a, b)| (bound(a), bound(b)))
        .collect()
}

/// The result of one cancellable sampling sweep: the feasible designs
/// found (all of them in the un-cancelled case, a prefix otherwise), the
/// attempt-stream position reached, and whether cancellation cut the
/// sweep short.
#[derive(Debug, Clone)]
pub struct SampleRun<T> {
    /// Feasible designs in attempt order. When `cancelled` is false this
    /// holds exactly the requested count; when true, whatever was found
    /// before the token fired.
    pub points: Vec<T>,
    /// Attempts consumed from the counter-based stream (feasible or not).
    pub attempts: u64,
    /// Whether the sweep stopped early because its token fired.
    pub cancelled: bool,
    /// Wall time of the sweep.
    pub elapsed: Duration,
}

/// The shared sampling engine behind `sample_custom` and its parallel
/// twin: walks the counter-based attempt stream, keeps the first `count`
/// feasible designs in attempt order, and caps total attempts.
///
/// `eval` maps a drawn design to `Ok(Some(T))` (feasible), `Ok(None)`
/// (infeasible — skipped), or `Err` (a real fault — propagated). With
/// `workers <= 1` everything runs inline on the calling thread.
///
/// The cancel token is polled at attempt boundaries (serial) and batch /
/// per-design boundaries (parallel); a token that never fires leaves the
/// attempt walk — and therefore the result — bit-identical. On
/// cancellation the engine returns the feasible prefix found so far
/// instead of erroring.
pub(crate) fn sample_engine<T: Send>(
    explorer: &Explorer,
    count: usize,
    seed: u64,
    workers: usize,
    max_attempts: u64,
    cancel: &CancelToken,
    eval: EvalFn<'_, T>,
) -> Result<(Vec<T>, u64, bool), ExploreError> {
    let space = explorer.paper_space();
    // Reject degenerate spaces up front (same panics as direct sampling).
    let _ = CustomSampler::new(space, seed);
    let workers = resolve_workers(workers);
    let mut points: Vec<T> = Vec::new();

    if workers <= 1 {
        let mut scratch = EvalScratch::new();
        let mut attempt = 0u64;
        while points.len() < count && attempt < max_attempts && !cancel.is_cancelled() {
            let design = sample_attempt(&space, seed, attempt);
            if let Some(t) = eval(explorer, &design, &mut scratch)? {
                points.push(t);
            }
            attempt += 1;
        }
        return Ok((points, attempt, cancel.is_cancelled()));
    }

    let mut next_attempt = 0u64;
    while points.len() < count && next_attempt < max_attempts && !cancel.is_cancelled() {
        let need = (count - points.len()) as u64;
        // Slight over-provisioning absorbs the (usually small) infeasible
        // fraction; any overshoot past the count-th success is discarded,
        // so the batch size never changes the result.
        let batch = (need + need / 16 + 16)
            .max(workers as u64 * 8)
            .min(max_attempts - next_attempt);
        let batch = usize::try_from(batch)
            .expect("batch is bounded by the remaining sample count, a usize");
        let chunks = chunk_bounds(batch, workers);
        let chunk_results: Vec<Vec<Result<Option<T>, ArchError>>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(lo, hi)| {
                    let base = next_attempt;
                    s.spawn(move || {
                        let mut scratch = EvalScratch::new();
                        (base + lo as u64..base + hi as u64)
                            .map(|a| {
                                // A fired token skips the remaining
                                // evaluations; skipped attempts read as
                                // infeasible, and the batch loop exits on
                                // the same token before drawing more.
                                if cancel.is_cancelled() {
                                    return Ok(None);
                                }
                                eval(explorer, &sample_attempt(&space, seed, a), &mut scratch)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        // Chunks are contiguous and concatenated in order, so this scan
        // replays the exact serial attempt order; outcomes past the
        // count-th success (including faults) are ignored, as a serial
        // walk would never have reached them.
        for outcome in chunk_results.into_iter().flatten() {
            if points.len() == count {
                break;
            }
            if let Some(t) = outcome? {
                points.push(t);
            }
        }
        next_attempt += batch as u64;
    }
    Ok((points, next_attempt, cancel.is_cancelled()))
}

/// Turns an un-cancelled engine result into the legacy all-or-error
/// contract: short of `count` feasible designs is an exhausted budget.
pub(crate) fn finish<T>(
    points: Vec<T>,
    count: usize,
    attempts: u64,
) -> Result<Vec<T>, ExploreError> {
    if points.len() < count {
        Err(ExploreError::AttemptsExhausted {
            wanted: count,
            got: points.len(),
            attempts,
        })
    } else {
        Ok(points)
    }
}

impl Explorer {
    /// Parallel twin of [`Self::sweep_baselines`]: shards the
    /// (architecture × CE count) grid across `workers` threads
    /// (`0` = one per core) and returns the identical point list.
    ///
    /// # Errors
    ///
    /// As [`Self::sweep_baselines`]: the first non-`Infeasible` builder
    /// fault in grid order.
    pub fn par_sweep_baselines(
        &self,
        range: impl IntoIterator<Item = usize> + Clone,
        workers: usize,
    ) -> Result<Vec<BaselinePoint>, ArchError> {
        let (points, _) =
            self.par_sweep_baselines_cancellable(range, workers, &CancelToken::new())?;
        Ok(points)
    }

    /// [`Self::par_sweep_baselines`] with a cooperative [`CancelToken`],
    /// polled before every (architecture, CE count) cell. A fired token
    /// skips the remaining cells and returns the points built so far with
    /// the `cancelled` flag set; a token that never fires leaves the
    /// sweep bit-identical to the plain twin.
    ///
    /// # Errors
    ///
    /// As [`Self::par_sweep_baselines`].
    pub fn par_sweep_baselines_cancellable(
        &self,
        range: impl IntoIterator<Item = usize> + Clone,
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<(Vec<BaselinePoint>, bool), ArchError> {
        let cells: Vec<(templates::Architecture, usize)> = templates::Architecture::ALL
            .into_iter()
            .flat_map(|a| range.clone().into_iter().map(move |ces| (a, ces)))
            .collect();
        let cell = |a, ces| {
            if cancel.is_cancelled() {
                return Ok(None);
            }
            self.baseline_cell(a, ces)
        };
        let workers = resolve_workers(workers).min(cells.len().max(1));
        let cell_results: Vec<Result<Option<BaselinePoint>, ArchError>> = if workers <= 1 {
            cells.iter().map(|&(a, ces)| cell(a, ces)).collect()
        } else {
            let chunks = chunk_bounds(cells.len(), workers);
            std::thread::scope(|s| {
                let cells = &cells;
                let cell = &cell;
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|&(lo, hi)| {
                        s.spawn(move || {
                            cells[lo..hi]
                                .iter()
                                .map(|&(a, ces)| cell(a, ces))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            })
        };
        let mut out = Vec::new();
        for r in cell_results {
            if let Some(point) = r? {
                out.push(point);
            }
        }
        Ok((out, cancel.is_cancelled()))
    }

    /// Parallel twin of [`Self::sample_custom`]: same `(count, seed)` ⇒
    /// same point set and order, for any `workers` (`0` = one per core).
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`].
    pub fn par_sample_custom(
        &self,
        count: usize,
        seed: u64,
        workers: usize,
    ) -> Result<(Vec<DesignPoint>, Duration), ExploreError> {
        self.par_sample_custom_capped(count, seed, workers, default_max_attempts(count))
    }

    /// [`Self::par_sample_custom`] with an explicit attempt budget —
    /// the parallel twin of [`Self::sample_custom_capped`].
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`], with `max_attempts` as the budget.
    pub fn par_sample_custom_capped(
        &self,
        count: usize,
        seed: u64,
        workers: usize,
        max_attempts: u64,
    ) -> Result<(Vec<DesignPoint>, Duration), ExploreError> {
        let start = Instant::now();
        let (points, attempts, _) = sample_engine(
            self,
            count,
            seed,
            workers,
            max_attempts,
            &CancelToken::new(),
            &|e, d, _| e.custom_cell(d),
        )?;
        let points = finish(points, count, attempts)?;
        Ok((points, start.elapsed()))
    }

    /// Parallel twin of [`Self::sample_custom_summaries`] — the
    /// throughput path for 100k-design sweeps: sharded sampling, lean
    /// per-design records evaluated through the summary fast lane with
    /// one scratch per worker, identical results for any worker count.
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`].
    pub fn par_sample_custom_summaries(
        &self,
        count: usize,
        seed: u64,
        workers: usize,
    ) -> Result<(Vec<CustomPoint>, Duration), ExploreError> {
        let run = self.par_sample_custom_summaries_cancellable(
            count,
            seed,
            workers,
            &CancelToken::new(),
        )?;
        Ok((run.points, run.elapsed))
    }

    /// [`Self::par_sample_custom_summaries`] with a cooperative
    /// [`CancelToken`], polled at attempt boundaries. A fired token stops
    /// the sweep and returns the feasible prefix found so far
    /// ([`SampleRun::cancelled`] set) instead of erroring; a token that
    /// never fires leaves the sweep bit-identical to the plain twin.
    ///
    /// # Errors
    ///
    /// As [`Self::sample_custom`] — but only un-cancelled sweeps can
    /// exhaust their attempt budget.
    pub fn par_sample_custom_summaries_cancellable(
        &self,
        count: usize,
        seed: u64,
        workers: usize,
        cancel: &CancelToken,
    ) -> Result<SampleRun<CustomPoint>, ExploreError> {
        let start = Instant::now();
        let (points, attempts, cancelled) = sample_engine(
            self,
            count,
            seed,
            workers,
            default_max_attempts(count),
            cancel,
            &|e, d, scratch| e.custom_summary_cell(d, scratch),
        )?;
        let points = if cancelled {
            points
        } else {
            finish(points, count, attempts)?
        };
        Ok(SampleRun {
            points,
            attempts,
            cancelled,
            elapsed: start.elapsed(),
        })
    }

    /// Exhaustively evaluates every design of a (small) custom space,
    /// sharded by contiguous lexicographic rank ranges across `workers`
    /// threads (`0` = one per core). Infeasible designs are skipped;
    /// results come back in rank order regardless of worker count.
    ///
    /// # Errors
    ///
    /// [`ExploreError::SpaceTooLarge`] when the space holds more than
    /// [`EXHAUSTIVE_LIMIT`] designs, [`ExploreError::Arch`] on the first
    /// real builder fault in rank order.
    pub fn par_evaluate_space(
        &self,
        space: &CustomSpace,
        workers: usize,
    ) -> Result<Vec<CustomPoint>, ExploreError> {
        let size = space.size();
        if size > EXHAUSTIVE_LIMIT {
            return Err(ExploreError::SpaceTooLarge {
                size,
                limit: EXHAUSTIVE_LIMIT,
            });
        }
        let workers = resolve_workers(workers);
        let walk_shard = |start: u128, end: u128| -> Result<Vec<CustomPoint>, ArchError> {
            let iter = space
                .designs_from(start)
                .expect("shard start is within the space");
            let mut scratch = EvalScratch::new();
            let mut out = Vec::new();
            for design in iter.take((end - start) as usize) {
                if let Some(p) = self.custom_summary_cell(&design, &mut scratch)? {
                    out.push(p);
                }
            }
            Ok(out)
        };
        let shards = space.shards(workers).expect("size fits u128");
        let shard_results: Vec<Result<Vec<CustomPoint>, ArchError>> = if workers <= 1 {
            shards.iter().map(|&(lo, hi)| walk_shard(lo, hi)).collect()
        } else {
            std::thread::scope(|s| {
                let walk = &walk_shard;
                let handles: Vec<_> = shards
                    .iter()
                    .map(|&(lo, hi)| s.spawn(move || walk(lo, hi)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            })
        };
        let mut out = Vec::new();
        for r in shard_results {
            out.extend(r?);
        }
        Ok(out)
    }
}

/// Indices of the non-dominated items, computed with per-worker local
/// [`ParetoFront`]s merged at the end (`workers = 0` ⇒ one per core).
/// Returns the same ascending index list as the batch
/// [`crate::pareto_front`] pass.
pub fn par_pareto_indices<S: MetricSource + Sync>(
    items: &[S],
    metrics: &[Metric],
    workers: usize,
) -> Vec<usize> {
    let workers = resolve_workers(workers).min(items.len().max(1));
    let values = |item: &S| -> Vec<f64> { metrics.iter().map(|m| m.value(item)).collect() };
    let mut merged = ParetoFront::new(metrics);
    if workers <= 1 {
        for (i, item) in items.iter().enumerate() {
            merged.offer_with_values(i, values(item));
        }
    } else {
        let chunks = chunk_bounds(items.len(), workers);
        let fronts: Vec<ParetoFront<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(lo, hi)| {
                    s.spawn(move || {
                        let mut front = ParetoFront::new(metrics);
                        for (off, item) in items[lo..hi].iter().enumerate() {
                            front.offer_with_values(lo + off, values(item));
                        }
                        front
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pareto worker panicked"))
                .collect()
        });
        for front in fronts {
            merged.merge(front);
        }
    }
    let mut indices = merged.into_items();
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    #[test]
    fn parallel_baseline_sweep_matches_serial() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let serial = e.sweep_baselines(2..=6).unwrap();
        for workers in [1usize, 2, 5] {
            let par = e.par_sweep_baselines(2..=6, workers).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.architecture, b.architecture);
                assert_eq!(a.ces, b.ces);
                assert_eq!(a.eval, b.eval);
            }
        }
    }

    #[test]
    fn parallel_sampling_matches_serial_for_any_worker_count() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let (serial, _) = e.sample_custom(30, 7).unwrap();
        for workers in [2usize, 3, 8] {
            let (par, _) = e.par_sample_custom(30, 7, workers).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.eval, b.eval);
            }
        }
    }

    #[test]
    fn exhaustive_evaluation_matches_serial_and_covers_the_space() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: m.conv_layer_count(),
            min_ces: 2,
            max_ces: 3,
        };
        let serial = e.par_evaluate_space(&space, 1).unwrap();
        assert!(!serial.is_empty());
        assert!(serial.len() as u128 <= space.size());
        for workers in [2usize, 4] {
            let par = e.par_evaluate_space(&space, workers).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn oversized_space_is_rejected() {
        let m = zoo::xception();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let space = CustomSpace::paper_range(74); // ~10^11 designs
        match e.par_evaluate_space(&space, 2) {
            Err(ExploreError::SpaceTooLarge { size, limit }) => {
                assert!(size > limit);
                assert_eq!(limit, EXHAUSTIVE_LIMIT);
            }
            other => panic!("expected SpaceTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn sharded_pareto_matches_batch() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::vcu110());
        let (points, _) = e.sample_custom_summaries(60, 13).unwrap();
        let summaries: Vec<_> = points.iter().map(|p| p.summary.clone()).collect();
        let metrics = [Metric::Throughput, Metric::OnChipBuffers];
        let serial = par_pareto_indices(&summaries, &metrics, 1);
        for workers in [2usize, 3, 16] {
            assert_eq!(par_pareto_indices(&summaries, &metrics, workers), serial);
        }
        // And the batch wrapper agrees on full evaluations.
        let (full, _) = e.sample_custom(60, 13).unwrap();
        let evals: Vec<_> = full.iter().map(|p| p.eval.clone()).collect();
        assert_eq!(pareto_front(&evals, &metrics), serial);
    }
}
