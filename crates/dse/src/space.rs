//! The custom design space of Use Case 3: a Hybrid-like pipelined head
//! followed by Segmented-like single-CE tail segments with free
//! boundaries.
//!
//! For a CNN with `n` layers and CE counts `k ∈ [min_ces, max_ces]`, a
//! design picks a head length `h ∈ [1, k-1]` (one pipelined CE per head
//! layer) and `k - h - 1` tail boundaries among the remaining layers —
//! `C(n - h - 1, k - h - 1)` choices. The paper quotes roughly 97.1
//! billion such designs for Xception with 2-11 CEs; [`CustomSpace::size`]
//! computes our space's exact cardinality.

use mccm_arch::{templates, AcceleratorSpec, ArchError, Schedule};
use mccm_cnn::CnnModel;
use rand::Rng;

/// A point in the custom space: head length, tail boundaries (exclusive
/// layer end indices, strictly increasing, last = layer count), and the
/// schedule every tail CE runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CustomDesign {
    /// Layers (= CEs) in the pipelined head.
    pub head_layers: usize,
    /// Exclusive end index of each tail segment.
    pub tail_ends: Vec<usize>,
    /// Schedule applied to every tail (single-CE) segment. The pipelined
    /// head is always layer-by-layer — depth-first makes no sense there
    /// (pipelined blocks already overlap layers at tile granularity).
    pub schedule: Schedule,
}

impl CustomDesign {
    /// Total CE count of the design.
    pub fn ce_count(&self) -> usize {
        self.head_layers + self.tail_ends.len()
    }

    /// The movable tail boundaries: every exclusive segment end except the
    /// final one (which is pinned to the layer count).
    fn interior(&self) -> &[usize] {
        &self.tail_ends[..self.tail_ends.len().saturating_sub(1)]
    }

    /// Materializes the design as an accelerator spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError::Infeasible`] for malformed boundaries.
    pub fn to_spec(&self, model: &CnnModel) -> Result<AcceleratorSpec, ArchError> {
        templates::custom_hybrid_segmented_scheduled(
            model,
            self.head_layers,
            &self.tail_ends,
            self.schedule,
        )
    }
}

/// The custom design space for one CNN and a CE-count range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomSpace {
    /// Convolution layers of the CNN.
    pub layers: usize,
    /// Minimum total CEs (≥ 2: at least one head CE and one tail CE).
    pub min_ces: usize,
    /// Maximum total CEs.
    pub max_ces: usize,
    /// Largest depth-first fuse depth the schedule axis may take. `1`
    /// (the default everywhere) disables the axis: every design is
    /// layer-by-layer and the space, its enumeration order, and the
    /// optimizer's RNG streams are exactly the pre-schedule ones.
    /// `d ≥ 2` adds `d - 1` depth-first variants (fuse depths `2..=d`)
    /// per structural design.
    pub max_fuse_depth: usize,
}

impl CustomSpace {
    /// The paper's CE range (2-11 CEs, §V-A3), layer-by-layer only.
    pub fn paper_range(layers: usize) -> Self {
        Self {
            layers,
            min_ces: 2,
            max_ces: 11,
            max_fuse_depth: 1,
        }
    }

    /// This space with the schedule axis extended to fuse depths up to
    /// `max_fuse_depth` (`1` keeps the axis off).
    #[must_use]
    pub fn with_max_fuse_depth(mut self, max_fuse_depth: usize) -> Self {
        self.max_fuse_depth = max_fuse_depth;
        self
    }

    /// Schedule choices per structural design (≥ 1).
    pub(crate) fn schedule_choices(&self) -> usize {
        self.max_fuse_depth.max(1)
    }

    /// The schedule at enumeration index `index`: `0` is layer-by-layer,
    /// `s ≥ 1` is depth-first with fuse depth `s + 1` (depth-first with
    /// fuse depth 1 is excluded — it is bit-identical to layer-by-layer
    /// and would duplicate every structural design).
    pub(crate) fn schedule_at(index: usize) -> Schedule {
        if index == 0 {
            Schedule::LayerByLayer
        } else {
            Schedule::DepthFirst {
                fuse_depth: index + 1,
            }
        }
    }

    /// Inverse of [`Self::schedule_at`] within this space's axis; `None`
    /// for schedules outside the space (fuse depth 1, or beyond
    /// `max_fuse_depth`).
    pub(crate) fn schedule_index(&self, schedule: Schedule) -> Option<usize> {
        match schedule {
            Schedule::LayerByLayer => Some(0),
            Schedule::DepthFirst { fuse_depth } => {
                if (2..=self.schedule_choices()).contains(&fuse_depth) {
                    Some(fuse_depth - 1)
                } else {
                    None
                }
            }
        }
    }

    /// Exact number of designs in the space, saturating at `u128::MAX`
    /// for spaces too large to count exactly (see [`Self::size_checked`]).
    ///
    /// `Σ_{k=min..=max} Σ_{h=1}^{k-1} C(n - h - 1, k - h - 1)` — the head
    /// covers layers `1..=h`, the `k - h` tail segments partition the
    /// remaining `n - h` layers (choose `k - h - 1` interior boundaries
    /// from `n - h - 1` positions).
    pub fn size(&self) -> u128 {
        self.size_checked().unwrap_or(u128::MAX)
    }

    /// Whether `design` is a well-formed member of this space: head in
    /// `[1, layers - 1]`, CE count within the space's range, tail
    /// boundaries strictly increasing past the head, last boundary equal
    /// to the layer count.
    pub fn contains(&self, design: &CustomDesign) -> bool {
        let n = self.layers;
        let h = design.head_layers;
        if h < 1 || h + 1 > n {
            return false;
        }
        if self.schedule_index(design.schedule).is_none() {
            return false;
        }
        let k = design.ce_count();
        if k < self.min_ces || k > self.max_ces {
            return false;
        }
        if design.tail_ends.last() != Some(&n) {
            return false;
        }
        let mut prev = h;
        design.tail_ends.iter().all(|&e| {
            let ok = e > prev;
            prev = e;
            ok
        })
    }

    /// The guided optimizer's **mutation operator**: one random head-length
    /// shift or tail-boundary move (slide, split, or merge), retried a few
    /// times until it yields a valid member of this space. Falls back to a
    /// clone of the input when no attempted move applies (e.g. a 2-layer
    /// space with nothing to vary).
    ///
    /// Deterministic given the RNG state — the optimizer drives it from
    /// counter-based per-island streams so results are worker-invariant.
    pub fn mutate<R: Rng>(&self, design: &CustomDesign, rng: &mut R) -> CustomDesign {
        debug_assert!(self.contains(design), "mutate input must be valid");
        // The two schedule moves only join the op pool when the schedule
        // axis is on, so `max_fuse_depth = 1` consumes the exact RNG
        // stream of the pre-schedule operator set.
        let ops: u32 = if self.schedule_choices() > 1 { 6 } else { 4 };
        for _ in 0..8 {
            let mut d = design.clone();
            let applied = match rng.random_range(0..ops) {
                0 => self.shift_head(&mut d, rng),
                1 => self.slide_boundary(&mut d, rng),
                2 => self.split_segment(&mut d, rng),
                3 => self.merge_segments(&mut d, rng),
                4 => self.flip_schedule(&mut d, rng),
                _ => self.shift_fuse_depth(&mut d, rng),
            };
            if applied && self.contains(&d) {
                return d;
            }
        }
        design.clone()
    }

    /// The guided optimizer's **crossover operator**: the child takes one
    /// parent's head length and a coin-flip blend of both parents' tail
    /// boundaries, repaired back into the space's CE range. Falls back to
    /// a clone of `a` when repair cannot produce a valid design.
    pub fn crossover<R: Rng>(
        &self,
        a: &CustomDesign,
        b: &CustomDesign,
        rng: &mut R,
    ) -> CustomDesign {
        debug_assert!(
            self.contains(a) && self.contains(b),
            "crossover inputs must be valid"
        );
        let n = self.layers;
        let head = if rng.random_bool(0.5) {
            a.head_layers
        } else {
            b.head_layers
        };
        // One coin flip picks a parent's schedule — drawn only when the
        // axis is on, so axis-off streams stay byte-compatible.
        let schedule = if self.schedule_choices() > 1 {
            if rng.random_bool(0.5) {
                a.schedule
            } else {
                b.schedule
            }
        } else {
            Schedule::LayerByLayer
        };
        // Blend: every parental copy of a boundary gets a p=1/2 coin flip
        // until one copy is kept, so a boundary unique to one parent
        // survives with p=1/2 and one both parents agree on with p=3/4 —
        // a deliberate bias toward consensus boundaries. (Boundaries at or
        // before the chosen head no longer exist.)
        let mut interior: Vec<usize> = Vec::new();
        let mut last_seen = 0usize;
        for e in merged_sorted(a.interior(), b.interior()) {
            if e > head && e < n && e != last_seen && rng.random_bool(0.5) {
                interior.push(e);
                last_seen = e;
            }
        }
        // Repair the segment count into [min_ces - head, max_ces - head].
        let min_segs = self.min_ces.saturating_sub(head).max(1);
        let max_segs = match self.max_ces.checked_sub(head) {
            Some(s) if s >= 1 => s,
            _ => return a.clone(), // head ≥ max_ces: no room for a tail
        };
        while interior.len() + 1 > max_segs {
            let i = rng.random_range(0..interior.len());
            interior.remove(i);
        }
        while interior.len() + 1 < min_segs {
            let free: Vec<usize> = (head + 1..n).filter(|p| !interior.contains(p)).collect();
            let Some(&p) = free.get(rng.random_range(0..free.len().max(1))) else {
                return a.clone(); // not enough layers to split further
            };
            let at = interior.partition_point(|&e| e < p);
            interior.insert(at, p);
        }
        let mut tail_ends = interior;
        tail_ends.push(n);
        let child = CustomDesign {
            schedule,
            head_layers: head,
            tail_ends,
        };
        if self.contains(&child) {
            child
        } else {
            a.clone()
        }
    }

    /// Deterministic **repair-toward-feasibility**: clamps an arbitrary
    /// design to a nearby well-formed member of this space. Members pass
    /// through untouched (and operator outputs are always members, so on
    /// today's operators this is a verified no-op — it exists as the
    /// optimizer's safety net so a future operator emitting an off-space
    /// child costs one repaired evaluation instead of a wasted budget
    /// draw or a panic). No RNG: repair is a pure function of the input,
    /// which keeps optimizer RNG streams and worker invariance intact.
    ///
    /// Repair steps, in order: head clamped to `[1, min(layers, max_ces)
    /// - 1]`; off-axis schedules snapped to layer-by-layer; boundaries
    /// deduplicated, sorted, confined to `(head, layers)`; the terminal
    /// boundary pinned to the layer count; highest interior boundaries
    /// dropped while over `max_ces`; smallest free positions inserted
    /// while under `min_ces`. Falls back to a clone of the input only
    /// when no member exists nearby (e.g. fewer layers than `min_ces`).
    pub fn repair(&self, design: &CustomDesign) -> CustomDesign {
        if self.contains(design) {
            return design.clone();
        }
        let n = self.layers;
        if n < 2 || self.max_ces < 2 {
            return design.clone();
        }
        let head = design.head_layers.clamp(1, n.min(self.max_ces) - 1);
        let schedule = if self.schedule_index(design.schedule).is_some() {
            design.schedule
        } else {
            Schedule::LayerByLayer
        };
        let mut interior: Vec<usize> = design
            .interior()
            .iter()
            .copied()
            .filter(|&e| e > head && e < n)
            .collect();
        interior.sort_unstable();
        interior.dedup();
        let min_segs = self.min_ces.saturating_sub(head).max(1);
        let max_segs = self.max_ces - head;
        while interior.len() + 1 > max_segs {
            interior.pop();
        }
        let mut candidate = head + 1;
        while interior.len() + 1 < min_segs && candidate < n {
            if !interior.contains(&candidate) {
                let at = interior.partition_point(|&e| e < candidate);
                interior.insert(at, candidate);
            }
            candidate += 1;
        }
        let mut tail_ends = interior;
        tail_ends.push(n);
        let repaired = CustomDesign {
            head_layers: head,
            tail_ends,
            schedule,
        };
        if self.contains(&repaired) {
            repaired
        } else {
            design.clone()
        }
    }

    /// Head-length shift: ±1 pipelined head layer. Boundaries at or below
    /// the new head are swallowed by it.
    fn shift_head<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        let grow = rng.random_bool(0.5);
        let h = d.head_layers;
        let new_h = if grow { h + 1 } else { h.wrapping_sub(1) };
        if new_h < 1 || new_h + 1 > self.layers {
            return false;
        }
        d.head_layers = new_h;
        // Boundaries the head swallowed disappear; the final `== layers`
        // end always survives (new_h < layers).
        d.tail_ends.retain(|&e| e > new_h);
        true
    }

    /// Tail-boundary slide: move one interior boundary ±1 layer, keeping
    /// strict monotonicity.
    fn slide_boundary<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        let interior_len = d.interior().len();
        if interior_len == 0 {
            return false;
        }
        let i = rng.random_range(0..interior_len);
        let delta: isize = if rng.random_bool(0.5) { 1 } else { -1 };
        let lo = if i == 0 {
            d.head_layers + 1
        } else {
            d.tail_ends[i - 1] + 1
        };
        let hi = d.tail_ends[i + 1] - 1; // interior ⇒ i + 1 exists
        let moved = d.tail_ends[i].saturating_add_signed(delta);
        if moved < lo || moved > hi {
            return false;
        }
        d.tail_ends[i] = moved;
        true
    }

    /// Tail split: insert a new boundary (one more, smaller tail segment).
    fn split_segment<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        if d.ce_count() + 1 > self.max_ces || d.head_layers + 1 >= self.layers {
            return false;
        }
        let p = rng.random_range(d.head_layers + 1..self.layers);
        if d.tail_ends.contains(&p) {
            return false; // outer retry loop draws again
        }
        let at = d.tail_ends.partition_point(|&e| e < p);
        d.tail_ends.insert(at, p);
        true
    }

    /// Tail merge: drop one interior boundary (two segments fuse).
    fn merge_segments<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        let interior_len = d.interior().len();
        if interior_len == 0 || d.ce_count() <= self.min_ces {
            return false;
        }
        let i = rng.random_range(0..interior_len);
        d.tail_ends.remove(i);
        true
    }

    /// Schedule flip: layer-by-layer becomes depth-first at a random
    /// fuse depth in `[2, max_fuse_depth]`; depth-first reverts to
    /// layer-by-layer. Only reachable when the schedule axis is on.
    fn flip_schedule<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        match d.schedule {
            Schedule::LayerByLayer => {
                if self.schedule_choices() < 2 {
                    return false;
                }
                d.schedule = Schedule::DepthFirst {
                    fuse_depth: rng.random_range(2..=self.schedule_choices()),
                };
                true
            }
            Schedule::DepthFirst { .. } => {
                d.schedule = Schedule::LayerByLayer;
                true
            }
        }
    }

    /// Fuse-depth shift: ±1 on a depth-first design's fuse depth, staying
    /// within `[2, max_fuse_depth]`. No-op on layer-by-layer designs.
    fn shift_fuse_depth<R: Rng>(&self, d: &mut CustomDesign, rng: &mut R) -> bool {
        let Schedule::DepthFirst { fuse_depth } = d.schedule else {
            return false;
        };
        let deeper = rng.random_bool(0.5);
        let new_depth = if deeper {
            fuse_depth + 1
        } else {
            fuse_depth.wrapping_sub(1)
        };
        if !(2..=self.schedule_choices()).contains(&new_depth) {
            return false;
        }
        d.schedule = Schedule::DepthFirst {
            fuse_depth: new_depth,
        };
        true
    }

    /// Exact number of designs in the space, or `None` if the count
    /// overflows `u128`. Every structural design carries one schedule
    /// variant per choice on the schedule axis (layer-by-layer plus the
    /// depth-first depths `2..=max_fuse_depth`).
    pub fn size_checked(&self) -> Option<u128> {
        let schedules = u128::try_from(self.schedule_choices()).ok()?;
        self.structural_size_checked()?.checked_mul(schedules)
    }

    /// Number of `(head, boundaries)` combinations, ignoring the schedule
    /// axis.
    fn structural_size_checked(&self) -> Option<u128> {
        // Explicit (infallible) widenings: `usize` has no `From` impl
        // into `u128`, and an `as` here would go silently lossy if the
        // index types ever changed.
        let n = u128::try_from(self.layers).ok()?;
        let mut total = 0u128;
        for k in self.min_ces..=self.max_ces {
            for h in 1..k {
                let tail_segments = u128::try_from(k - h).ok()?;
                // A head of h layers needs at least one tail layer; the
                // old saturating_sub here silently counted one phantom
                // design per (k, h) with h >= layers.
                let h_wide = u128::try_from(h).ok()?;
                let Some(positions) = n.checked_sub(h_wide + 1) else {
                    continue;
                };
                total = total.checked_add(binomial_checked(positions, tail_segments - 1)?)?;
            }
        }
        Some(total)
    }
}

/// Binomial coefficient in u128, saturating honestly: on overflow the
/// result is `u128::MAX`, never a silently wrong smaller number (the old
/// `saturating_mul`-then-divide scheme returned saturated-then-divided
/// garbage for large inputs).
pub fn binomial(n: u128, k: u128) -> u128 {
    binomial_checked(n, k).unwrap_or(u128::MAX)
}

/// Binomial coefficient in u128, or `None` when the value (or an
/// irreducible intermediate product) overflows.
///
/// Each step multiplies the exact running value `C(n, i)` by
/// `(n - i) / (i + 1)`; when the direct product would overflow, common
/// factors are cancelled first so only genuinely out-of-range results
/// report overflow.
pub fn binomial_checked(n: u128, k: u128) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut result = 1u128;
    for i in 0..k {
        let (num, den) = (n - i, i + 1);
        result = match result.checked_mul(num) {
            Some(prod) => prod / den, // exact: den divides result * num
            None => {
                // Cancel gcd factors, then retry; division stays exact.
                let g = gcd(num, den);
                let (num, den) = (num / g, den / g);
                let g = gcd(result, den);
                let (res, den) = (result / g, den / g);
                debug_assert_eq!(den, 1, "C(n,i+1) must be an integer");
                res.checked_mul(num)?
            }
        };
    }
    Some(result)
}

/// Merges two ascending slices into one ascending `Vec` (duplicates kept
/// adjacent — crossover's blend loop skips the second copy of a kept
/// boundary).
fn merged_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::CustomSampler;
    use mccm_cnn::zoo;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_overflow_saturates_honestly() {
        // Regression: the old saturating_mul-then-divide scheme returned a
        // silently wrong (saturated-then-divided) count here instead of
        // either the exact value or an honest saturation marker.
        assert_eq!(binomial_checked(1000, 500), None);
        assert_eq!(binomial(1000, 500), u128::MAX);
        assert_eq!(binomial_checked(170, 85), None);
        assert_eq!(binomial(170, 85), u128::MAX);
        // Large-but-representable values stay exact (the intermediate
        // product overflows without the gcd-cancellation rescue).
        assert_eq!(
            binomial_checked(100, 50),
            Some(100_891_344_545_564_193_334_812_497_256)
        );
        // The boundary is honest in both directions: every exact result is
        // below the saturation marker.
        for k in 0..=64u128 {
            assert!(binomial(128, k) < u128::MAX);
        }
    }

    #[test]
    fn size_checked_matches_size_for_real_spaces() {
        let space = CustomSpace::paper_range(74);
        assert_eq!(space.size_checked(), Some(space.size()));
    }

    #[test]
    fn space_size_is_astronomical_for_xception() {
        // The paper quotes ~97.1 billion designs for XCp with 2-11 CEs;
        // our space definition lands in the same regime (within two orders
        // of magnitude), far beyond exhaustive evaluation.
        let space = CustomSpace::paper_range(74);
        let size = space.size();
        assert!(size > 1_000_000_000, "space size {size}");
        assert!(size < 100_000_000_000_000, "space size {size}");
    }

    #[test]
    fn tiny_space_enumerates() {
        // n=4 layers, k=2..3:
        // k=2: h=1, tail=1 segment -> 1 design.
        // k=3: h=1 tail 2 segs -> C(2,1)=2; h=2 tail 1 seg -> 1.
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 4,
            min_ces: 2,
            max_ces: 3,
        };
        assert_eq!(space.size(), 1 + 2 + 1);
    }

    #[test]
    fn contains_accepts_members_and_rejects_malformed_designs() {
        let space = CustomSpace::paper_range(74);
        let ok = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        };
        assert!(space.contains(&ok));
        // Last end must be the layer count.
        assert!(!space.contains(&CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52]
        }));
        // Boundaries must be strictly increasing past the head.
        assert!(!space.contains(&CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![3, 74]
        }));
        assert!(!space.contains(&CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![52, 20, 74]
        }));
        // CE count must stay within the range.
        let narrow = CustomSpace {
            max_fuse_depth: 1,
            layers: 74,
            min_ces: 3,
            max_ces: 11,
        };
        assert!(!narrow.contains(&CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 1,
            tail_ends: vec![74]
        }));
        let too_many = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 6,
            tail_ends: (7..=11).chain(std::iter::once(74)).collect(),
        };
        assert_eq!(too_many.ce_count(), 12);
        assert!(!space.contains(&too_many));
        // Headless designs are not members.
        assert!(!space.contains(&CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 0,
            tail_ends: vec![10, 74]
        }));
    }

    #[test]
    fn repair_passes_members_through_and_fixes_malformed_designs() {
        let space = CustomSpace::paper_range(74).with_max_fuse_depth(3);
        let member = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        };
        assert_eq!(space.repair(&member), member);
        // Every kind of damage, repaired into a member.
        let broken = [
            // Headless.
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 0,
                tail_ends: vec![20, 74],
            },
            // Head past the CE cap.
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 40,
                tail_ends: vec![74],
            },
            // Unsorted, duplicated, out-of-range boundaries; wrong
            // terminal.
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 3,
                tail_ends: vec![52, 20, 20, 2, 90],
            },
            // Too many CEs.
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 6,
                tail_ends: (7..=11).chain(std::iter::once(74)).collect(),
            },
            // Off-axis schedules: fuse depth 1 (excluded duplicate) and
            // a depth past the axis cap.
            CustomDesign {
                schedule: mccm_arch::Schedule::DepthFirst { fuse_depth: 1 },
                head_layers: 3,
                tail_ends: vec![20, 74],
            },
            CustomDesign {
                schedule: mccm_arch::Schedule::DepthFirst { fuse_depth: 9 },
                head_layers: 3,
                tail_ends: vec![20, 74],
            },
            // No tail at all.
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 3,
                tail_ends: vec![],
            },
        ];
        for d in &broken {
            let r = space.repair(d);
            assert!(space.contains(&r), "repair of {d:?} invalid: {r:?}");
            // Repair is idempotent.
            assert_eq!(space.repair(&r), r);
        }
        // min_ces pressure: a 1-CE-tail design in a min_ces=4 space gains
        // the smallest free boundaries.
        let narrow = CustomSpace {
            max_fuse_depth: 1,
            layers: 10,
            min_ces: 4,
            max_ces: 6,
        };
        let thin = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 1,
            tail_ends: vec![10],
        };
        let r = narrow.repair(&thin);
        assert!(narrow.contains(&r), "{r:?}");
        assert_eq!(r.tail_ends, vec![2, 3, 10]);
        // Hopeless inputs come back unchanged, honestly non-members.
        let hopeless = CustomSpace {
            max_fuse_depth: 1,
            layers: 2,
            min_ces: 5,
            max_ces: 6,
        };
        let d = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 1,
            tail_ends: vec![2],
        };
        assert_eq!(hopeless.repair(&d), d);
    }

    #[test]
    fn repair_never_fires_on_operator_outputs() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74).with_max_fuse_depth(3);
        let mut rng = StdRng::seed_from_u64(13);
        let mut sampler = CustomSampler::new(space, 17);
        for _ in 0..300 {
            let a = sampler.sample();
            let b = sampler.sample();
            let m = space.mutate(&a, &mut rng);
            let c = space.crossover(&a, &b, &mut rng);
            // Operator outputs are already members, so repair must be an
            // exact pass-through — the property that keeps the optimizer's
            // repair hook trajectory-neutral.
            assert_eq!(space.repair(&m), m);
            assert_eq!(space.repair(&c), c);
        }
    }

    #[test]
    fn mutation_stays_inside_the_space_and_moves() {
        use rand::{rngs::StdRng, SeedableRng};
        for (layers, min_ces, max_ces) in [(74, 2, 11), (6, 2, 5), (10, 2, 11)] {
            let space = CustomSpace {
                max_fuse_depth: 1,
                layers,
                min_ces,
                max_ces,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let mut sampler = CustomSampler::new(space, 3);
            let mut changed = 0usize;
            for _ in 0..200 {
                let d = sampler.sample();
                let m = space.mutate(&d, &mut rng);
                assert!(space.contains(&m), "mutant of {d:?} invalid: {m:?}");
                if m != d {
                    changed += 1;
                }
            }
            // Mutation must actually move most of the time.
            assert!(
                changed > 150,
                "only {changed}/200 mutations moved ({layers} layers)"
            );
        }
    }

    #[test]
    fn crossover_stays_inside_the_space_and_blends() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = CustomSampler::new(space, 5);
        let mut differs_from_both = 0usize;
        for _ in 0..200 {
            let a = sampler.sample();
            let b = sampler.sample();
            let c = space.crossover(&a, &b, &mut rng);
            assert!(space.contains(&c), "child of {a:?} x {b:?} invalid: {c:?}");
            if c != a && c != b {
                differs_from_both += 1;
            }
        }
        assert!(differs_from_both > 100, "crossover degenerated to cloning");
    }

    #[test]
    fn operators_are_deterministic_per_rng_stream() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74);
        let a = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        };
        let b = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 5,
            tail_ends: vec![30, 60, 70, 74],
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut out = Vec::new();
            for _ in 0..50 {
                out.push(space.mutate(&a, &mut rng));
                out.push(space.crossover(&a, &b, &mut rng));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn schedule_mutations_walk_the_axis_and_stay_valid() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74).with_max_fuse_depth(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = CustomDesign {
            schedule: Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        };
        let mut depths = std::collections::HashSet::new();
        let mut back_to_lbl = false;
        for _ in 0..400 {
            let was_df = matches!(d.schedule, Schedule::DepthFirst { .. });
            d = space.mutate(&d, &mut rng);
            assert!(space.contains(&d), "mutant left the space: {d:?}");
            match d.schedule {
                Schedule::DepthFirst { fuse_depth } => {
                    depths.insert(fuse_depth);
                }
                Schedule::LayerByLayer if was_df => back_to_lbl = true,
                Schedule::LayerByLayer => {}
            }
        }
        assert!(depths.len() >= 2, "fuse depths reached: {depths:?}");
        assert!(depths.iter().all(|&f| (2..=4).contains(&f)));
        assert!(back_to_lbl, "flip never reverted to layer-by-layer");
    }

    #[test]
    fn axis_off_space_never_leaves_layer_by_layer() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74);
        assert!(!space.contains(&CustomDesign {
            schedule: Schedule::DepthFirst { fuse_depth: 2 },
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        }));
        let mut rng = StdRng::seed_from_u64(13);
        let mut sampler = CustomSampler::new(space, 3);
        for _ in 0..100 {
            let a = sampler.sample();
            let b = sampler.sample();
            assert_eq!(a.schedule, Schedule::LayerByLayer);
            let m = space.mutate(&a, &mut rng);
            assert_eq!(m.schedule, Schedule::LayerByLayer);
            let c = space.crossover(&a, &b, &mut rng);
            assert_eq!(c.schedule, Schedule::LayerByLayer);
        }
    }

    #[test]
    fn crossover_inherits_one_parent_schedule() {
        use rand::{rngs::StdRng, SeedableRng};
        let space = CustomSpace::paper_range(74).with_max_fuse_depth(3);
        let a = CustomDesign {
            schedule: Schedule::DepthFirst { fuse_depth: 3 },
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
        };
        let b = CustomDesign {
            schedule: Schedule::LayerByLayer,
            head_layers: 5,
            tail_ends: vec![30, 60, 70, 74],
        };
        let mut rng = StdRng::seed_from_u64(17);
        let mut inherited = std::collections::HashSet::new();
        for _ in 0..100 {
            let c = space.crossover(&a, &b, &mut rng);
            assert!(space.contains(&c));
            assert!(c.schedule == a.schedule || c.schedule == b.schedule);
            inherited.insert(c.schedule);
        }
        assert_eq!(inherited.len(), 2, "both parental schedules must appear");
    }

    #[test]
    fn design_materializes() {
        let m = zoo::mobilenet_v2();
        let d = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![20, 52],
        };
        assert_eq!(d.ce_count(), 5);
        let spec = d.to_spec(&m).unwrap();
        assert_eq!(spec.ce_count(), 5);
        assert!(spec.coarse_pipeline);
    }
}
