//! The custom design space of Use Case 3: a Hybrid-like pipelined head
//! followed by Segmented-like single-CE tail segments with free
//! boundaries.
//!
//! For a CNN with `n` layers and CE counts `k ∈ [min_ces, max_ces]`, a
//! design picks a head length `h ∈ [1, k-1]` (one pipelined CE per head
//! layer) and `k - h - 1` tail boundaries among the remaining layers —
//! `C(n - h - 1, k - h - 1)` choices. The paper quotes roughly 97.1
//! billion such designs for Xception with 2-11 CEs; [`CustomSpace::size`]
//! computes our space's exact cardinality.

use mccm_arch::{templates, AcceleratorSpec, ArchError};
use mccm_cnn::CnnModel;

/// A point in the custom space: head length plus tail boundaries
/// (exclusive layer end indices, strictly increasing, last = layer count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CustomDesign {
    /// Layers (= CEs) in the pipelined head.
    pub head_layers: usize,
    /// Exclusive end index of each tail segment.
    pub tail_ends: Vec<usize>,
}

impl CustomDesign {
    /// Total CE count of the design.
    pub fn ce_count(&self) -> usize {
        self.head_layers + self.tail_ends.len()
    }

    /// Materializes the design as an accelerator spec.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError::Infeasible`] for malformed boundaries.
    pub fn to_spec(&self, model: &CnnModel) -> Result<AcceleratorSpec, ArchError> {
        templates::custom_hybrid_segmented(model, self.head_layers, &self.tail_ends)
    }
}

/// The custom design space for one CNN and a CE-count range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomSpace {
    /// Convolution layers of the CNN.
    pub layers: usize,
    /// Minimum total CEs (≥ 2: at least one head CE and one tail CE).
    pub min_ces: usize,
    /// Maximum total CEs.
    pub max_ces: usize,
}

impl CustomSpace {
    /// The paper's CE range (2-11 CEs, §V-A3).
    pub fn paper_range(layers: usize) -> Self {
        Self { layers, min_ces: 2, max_ces: 11 }
    }

    /// Exact number of designs in the space, saturating at `u128::MAX`
    /// for spaces too large to count exactly (see [`Self::size_checked`]).
    ///
    /// `Σ_{k=min..=max} Σ_{h=1}^{k-1} C(n - h - 1, k - h - 1)` — the head
    /// covers layers `1..=h`, the `k - h` tail segments partition the
    /// remaining `n - h` layers (choose `k - h - 1` interior boundaries
    /// from `n - h - 1` positions).
    pub fn size(&self) -> u128 {
        self.size_checked().unwrap_or(u128::MAX)
    }

    /// Exact number of designs in the space, or `None` if the count
    /// overflows `u128`.
    pub fn size_checked(&self) -> Option<u128> {
        let n = self.layers as u128;
        let mut total = 0u128;
        for k in self.min_ces..=self.max_ces {
            for h in 1..k {
                let tail_segments = (k - h) as u128;
                // A head of h layers needs at least one tail layer; the
                // old saturating_sub here silently counted one phantom
                // design per (k, h) with h >= layers.
                let Some(positions) = n.checked_sub(h as u128 + 1) else {
                    continue;
                };
                total = total.checked_add(binomial_checked(positions, tail_segments - 1)?)?;
            }
        }
        Some(total)
    }
}

/// Binomial coefficient in u128, saturating honestly: on overflow the
/// result is `u128::MAX`, never a silently wrong smaller number (the old
/// `saturating_mul`-then-divide scheme returned saturated-then-divided
/// garbage for large inputs).
pub fn binomial(n: u128, k: u128) -> u128 {
    binomial_checked(n, k).unwrap_or(u128::MAX)
}

/// Binomial coefficient in u128, or `None` when the value (or an
/// irreducible intermediate product) overflows.
///
/// Each step multiplies the exact running value `C(n, i)` by
/// `(n - i) / (i + 1)`; when the direct product would overflow, common
/// factors are cancelled first so only genuinely out-of-range results
/// report overflow.
pub fn binomial_checked(n: u128, k: u128) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut result = 1u128;
    for i in 0..k {
        let (num, den) = (n - i, i + 1);
        result = match result.checked_mul(num) {
            Some(prod) => prod / den, // exact: den divides result * num
            None => {
                // Cancel gcd factors, then retry; division stays exact.
                let g = gcd(num, den);
                let (num, den) = (num / g, den / g);
                let g = gcd(result, den);
                let (res, den) = (result / g, den / g);
                debug_assert_eq!(den, 1, "C(n,i+1) must be an integer");
                res.checked_mul(num)?
            }
        };
    }
    Some(result)
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_cnn::zoo;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_overflow_saturates_honestly() {
        // Regression: the old saturating_mul-then-divide scheme returned a
        // silently wrong (saturated-then-divided) count here instead of
        // either the exact value or an honest saturation marker.
        assert_eq!(binomial_checked(1000, 500), None);
        assert_eq!(binomial(1000, 500), u128::MAX);
        assert_eq!(binomial_checked(170, 85), None);
        assert_eq!(binomial(170, 85), u128::MAX);
        // Large-but-representable values stay exact (the intermediate
        // product overflows without the gcd-cancellation rescue).
        assert_eq!(
            binomial_checked(100, 50),
            Some(100_891_344_545_564_193_334_812_497_256)
        );
        // The boundary is honest in both directions: every exact result is
        // below the saturation marker.
        for k in 0..=64u128 {
            assert!(binomial(128, k) < u128::MAX);
        }
    }

    #[test]
    fn size_checked_matches_size_for_real_spaces() {
        let space = CustomSpace::paper_range(74);
        assert_eq!(space.size_checked(), Some(space.size()));
    }

    #[test]
    fn space_size_is_astronomical_for_xception() {
        // The paper quotes ~97.1 billion designs for XCp with 2-11 CEs;
        // our space definition lands in the same regime (within two orders
        // of magnitude), far beyond exhaustive evaluation.
        let space = CustomSpace::paper_range(74);
        let size = space.size();
        assert!(size > 1_000_000_000, "space size {size}");
        assert!(size < 100_000_000_000_000, "space size {size}");
    }

    #[test]
    fn tiny_space_enumerates() {
        // n=4 layers, k=2..3:
        // k=2: h=1, tail=1 segment -> 1 design.
        // k=3: h=1 tail 2 segs -> C(2,1)=2; h=2 tail 1 seg -> 1.
        let space = CustomSpace { layers: 4, min_ces: 2, max_ces: 3 };
        assert_eq!(space.size(), 1 + 2 + 1);
    }

    #[test]
    fn design_materializes() {
        let m = zoo::mobilenet_v2();
        let d = CustomDesign { head_layers: 3, tail_ends: vec![20, 52] };
        assert_eq!(d.ce_count(), 5);
        let spec = d.to_spec(&m).unwrap();
        assert_eq!(spec.ce_count(), 5);
        assert!(spec.coarse_pipeline);
    }
}
