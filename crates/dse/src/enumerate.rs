//! Lexicographic enumeration of a [`CustomSpace`] with rank/unrank.
//!
//! Designs are totally ordered by `(ce_count, head_layers, boundaries,
//! schedule)`: CE count ascending, head length ascending, the
//! tail-boundary combination in lexicographic order, then the schedule
//! index innermost (layer-by-layer first, depth-first by fuse depth) —
//! so a `max_fuse_depth = 1` space enumerates exactly as before the
//! schedule axis existed. [`CustomSpace::rank`] and
//! [`CustomSpace::unrank`] map between designs and their position in that
//! order via the combinatorial number system, so the whole space — or any
//! contiguous chunk of it — can be walked without materializing it. That
//! is what lets exhaustive sweeps shard a space into `[start, end)` rank
//! ranges and hand each range to a worker thread
//! ([`CustomSpace::shards`]).

use crate::space::{binomial_checked, CustomDesign, CustomSpace};

/// One `(ce_count, head)` block: all designs sharing a CE count and head
/// length, ordered by their tail-boundary combination.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Head layers `h`.
    head: usize,
    /// Tail segments `k - h` (≥ 1).
    segments: usize,
    /// Interior boundary positions available: `layers - h - 1`.
    positions: usize,
    /// Designs in the block: `C(positions, segments - 1)`, `None` when the
    /// count overflows `u128`.
    size: Option<u128>,
}

/// Non-empty blocks of `space` in enumeration order.
fn blocks(space: &CustomSpace) -> Vec<Block> {
    let n = space.layers;
    let mut out = Vec::new();
    for k in space.min_ces..=space.max_ces {
        for h in 1..k {
            if h + 1 > n {
                continue; // no tail layer left
            }
            let positions = n - h - 1;
            let segments = k - h;
            if positions + 1 < segments {
                continue; // not enough layers for that many segments
            }
            let size = binomial_checked(positions as u128, segments as u128 - 1);
            out.push(Block {
                head: h,
                segments,
                positions,
                size,
            });
        }
    }
    out
}

/// Lexicographic rank of the `t`-combination `comb` (strictly increasing
/// values in `0..m`), or `None` on overflow.
fn comb_rank(m: usize, comb: &[usize]) -> Option<u128> {
    let t = comb.len();
    let mut rank = 0u128;
    let mut prev = 0usize;
    for (j, &c) in comb.iter().enumerate() {
        for v in prev..c {
            rank = rank.checked_add(binomial_checked((m - v - 1) as u128, (t - j - 1) as u128)?)?;
        }
        prev = c + 1;
    }
    Some(rank)
}

/// The `t`-combination of `0..m` at lexicographic `rank` (`rank` must be
/// `< C(m, t)`), or `None` on overflow.
fn comb_unrank(m: usize, t: usize, mut rank: u128) -> Option<Vec<usize>> {
    let mut comb = Vec::with_capacity(t);
    let mut v = 0usize;
    for j in 0..t {
        loop {
            debug_assert!(v < m, "rank out of range for C({m}, {t})");
            let with_v = binomial_checked((m - v - 1) as u128, (t - j - 1) as u128)?;
            if rank < with_v {
                comb.push(v);
                v += 1;
                break;
            }
            rank -= with_v;
            v += 1;
        }
    }
    Some(comb)
}

/// Advances `comb` (a combination of `0..m`) to its lexicographic
/// successor in place; returns `false` when `comb` was the last one.
fn next_combination(comb: &mut [usize], m: usize) -> bool {
    let t = comb.len();
    for j in (0..t).rev() {
        if comb[j] < m - (t - j) {
            comb[j] += 1;
            for i in j + 1..t {
                comb[i] = comb[i - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Iterator over a [`CustomSpace`]'s designs in lexicographic order.
///
/// Created by [`CustomSpace::designs`] or [`CustomSpace::designs_from`];
/// see the module docs for the ordering.
#[derive(Debug, Clone)]
pub struct DesignIter {
    layers: usize,
    blocks: Vec<Block>,
    /// Index of the current block, or `blocks.len()` when exhausted.
    block: usize,
    /// Current combination within the block (next design to yield).
    comb: Vec<usize>,
    /// Whether `comb`'s current schedule variant has been yielded.
    spent: bool,
    /// Schedule index of the next design (`0` = layer-by-layer); cycles
    /// through `0..schedules` before the combination advances.
    sched: usize,
    /// Schedule choices per structural design (the space's
    /// `schedule_choices()`).
    schedules: usize,
}

impl DesignIter {
    fn design(&self) -> CustomDesign {
        let b = &self.blocks[self.block];
        let mut tail_ends: Vec<usize> = self.comb.iter().map(|&c| b.head + 1 + c).collect();
        tail_ends.push(self.layers);
        CustomDesign {
            schedule: CustomSpace::schedule_at(self.sched),
            head_layers: b.head,
            tail_ends,
        }
    }

    fn enter_block(&mut self, block: usize) {
        self.block = block;
        self.spent = false;
        self.sched = 0;
        if block < self.blocks.len() {
            let b = &self.blocks[block];
            self.comb = (0..b.segments - 1).collect();
        }
    }
}

impl Iterator for DesignIter {
    type Item = CustomDesign;

    fn next(&mut self) -> Option<CustomDesign> {
        loop {
            if self.block >= self.blocks.len() {
                return None;
            }
            if !self.spent {
                self.spent = true;
                return Some(self.design());
            }
            // All schedule variants of the current combination first …
            if self.sched + 1 < self.schedules {
                self.sched += 1;
                return Some(self.design());
            }
            // … then the next combination, back at layer-by-layer.
            self.sched = 0;
            let positions = self.blocks[self.block].positions;
            if next_combination(&mut self.comb, positions) {
                return Some(self.design());
            }
            self.enter_block(self.block + 1);
        }
    }
}

impl CustomSpace {
    /// Iterates every design of the space in lexicographic order.
    pub fn designs(&self) -> DesignIter {
        let mut it = DesignIter {
            layers: self.layers,
            blocks: blocks(self),
            block: 0,
            comb: Vec::new(),
            spent: false,
            sched: 0,
            schedules: self.schedule_choices(),
        };
        it.enter_block(0);
        it
    }

    /// Iterates designs starting at lexicographic `rank` (inclusive);
    /// `None` when `rank >= size` or the space is too large to rank.
    pub fn designs_from(&self, rank: u128) -> Option<DesignIter> {
        let schedules = self.schedule_choices();
        // Rank interleaves the schedule axis innermost: structural rank
        // times `schedules`, plus the schedule index.
        let structural = rank / u128::try_from(schedules).ok()?;
        let sched = usize::try_from(rank % u128::try_from(schedules).ok()?).ok()?;
        let blocks = blocks(self);
        let mut remaining = structural;
        for (i, b) in blocks.iter().enumerate() {
            let size = b.size?;
            if remaining < size {
                let comb = comb_unrank(b.positions, b.segments - 1, remaining)?;
                return Some(DesignIter {
                    layers: self.layers,
                    blocks,
                    block: i,
                    comb,
                    spent: false,
                    sched,
                    schedules,
                });
            }
            remaining -= size;
        }
        None
    }

    /// Lexicographic rank of `design` in this space; `None` when the
    /// design does not belong to the space (wrong CE count, head, or
    /// boundaries) or the space is too large to rank.
    pub fn rank(&self, design: &CustomDesign) -> Option<u128> {
        let n = self.layers;
        let h = design.head_layers;
        let k = design.ce_count();
        if h < 1 || !(self.min_ces..=self.max_ces).contains(&k) {
            return None;
        }
        if design.tail_ends.last() != Some(&n) {
            return None;
        }
        let sched = u128::try_from(self.schedule_index(design.schedule)?).ok()?;
        let schedules = u128::try_from(self.schedule_choices()).ok()?;
        // Interior boundaries must be strictly increasing in (h, n).
        let interior = &design.tail_ends[..design.tail_ends.len() - 1];
        let mut prev = h;
        for &e in interior {
            if e <= prev || e >= n {
                return None;
            }
            prev = e;
        }
        let mut base = 0u128;
        for b in blocks(self) {
            if b.head == h && b.segments == k - h {
                let comb: Vec<usize> = interior.iter().map(|&e| e - h - 1).collect();
                let structural = base.checked_add(comb_rank(b.positions, &comb)?)?;
                return structural.checked_mul(schedules)?.checked_add(sched);
            }
            base = base.checked_add(b.size?)?;
        }
        None
    }

    /// The design at lexicographic `rank`; `None` when `rank >= size` or
    /// the space is too large to rank.
    pub fn unrank(&self, rank: u128) -> Option<CustomDesign> {
        let mut it = self.designs_from(rank)?;
        it.next()
    }

    /// Splits `[0, size)` into at most `shards` contiguous, near-equal
    /// `(start, end)` rank ranges — one per worker of a sharded exhaustive
    /// sweep. Empty ranges are dropped, so fewer than `shards` ranges come
    /// back for tiny spaces; `None` when the space is too large to count.
    pub fn shards(&self, shards: usize) -> Option<Vec<(u128, u128)>> {
        Some(partition(self.size_checked()?, shards))
    }
}

/// Splits `[0, len)` into at most `parts` contiguous near-equal ranges
/// (sizes differing by at most one); empty ranges are dropped. Shared by
/// rank-range sharding and the parallel engine's attempt batching.
pub(crate) fn partition(len: u128, parts: usize) -> Vec<(u128, u128)> {
    let parts = parts.max(1) as u128;
    let chunk = len / parts;
    let extra = len % parts;
    let mut out = Vec::new();
    let mut start = 0u128;
    for i in 0..parts {
        let size = chunk + u128::from(i < extra);
        if size == 0 {
            break;
        }
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_space_enumerates_in_order() {
        // n=4, k=2..3 — the 4 designs of space.rs's `tiny_space_enumerates`.
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 4,
            min_ces: 2,
            max_ces: 3,
        };
        let all: Vec<CustomDesign> = space.designs().collect();
        assert_eq!(all.len() as u128, space.size());
        let expected = [
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 1,
                tail_ends: vec![4],
            },
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 1,
                tail_ends: vec![2, 4],
            },
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 1,
                tail_ends: vec![3, 4],
            },
            CustomDesign {
                schedule: mccm_arch::Schedule::LayerByLayer,
                head_layers: 2,
                tail_ends: vec![4],
            },
        ];
        assert_eq!(all, expected);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        for space in [
            CustomSpace {
                max_fuse_depth: 1,
                layers: 7,
                min_ces: 2,
                max_ces: 5,
            },
            CustomSpace {
                max_fuse_depth: 1,
                layers: 10,
                min_ces: 2,
                max_ces: 4,
            },
            CustomSpace {
                max_fuse_depth: 1,
                layers: 5,
                min_ces: 2,
                max_ces: 11,
            }, // clamped head
            CustomSpace {
                max_fuse_depth: 3,
                layers: 7,
                min_ces: 2,
                max_ces: 5,
            }, // schedule axis on
        ] {
            let size = space.size();
            let mut seen = std::collections::HashSet::new();
            for (i, d) in space.designs().enumerate() {
                let r = i as u128;
                assert_eq!(space.rank(&d), Some(r), "{d:?}");
                assert_eq!(space.unrank(r).as_ref(), Some(&d));
                assert!(seen.insert(d), "duplicate design at rank {r}");
            }
            assert_eq!(seen.len() as u128, size);
            assert_eq!(space.unrank(size), None);
        }
    }

    #[test]
    fn schedule_axis_scales_and_orders_the_enumeration() {
        use mccm_arch::Schedule;
        let base = CustomSpace {
            max_fuse_depth: 1,
            layers: 7,
            min_ces: 2,
            max_ces: 5,
        };
        let ext = base.with_max_fuse_depth(3);
        assert_eq!(ext.size(), 3 * base.size());
        let all: Vec<CustomDesign> = ext.designs().collect();
        assert_eq!(all.len() as u128, ext.size());
        // The schedule index cycles innermost: every structural design
        // appears as LbL, @df2, @df3, in that order, and stripping the
        // schedule recovers the base enumeration.
        for (i, chunk) in all.chunks(3).enumerate() {
            assert_eq!(chunk[0].schedule, Schedule::LayerByLayer, "design {i}");
            assert_eq!(
                chunk[1].schedule,
                Schedule::DepthFirst { fuse_depth: 2 },
                "design {i}"
            );
            assert_eq!(
                chunk[2].schedule,
                Schedule::DepthFirst { fuse_depth: 3 },
                "design {i}"
            );
            assert!(chunk
                .iter()
                .all(|d| (d.head_layers, &d.tail_ends)
                    == (chunk[0].head_layers, &chunk[0].tail_ends)));
        }
        let stripped: Vec<CustomDesign> = all
            .iter()
            .step_by(3)
            .map(|d| CustomDesign {
                schedule: Schedule::LayerByLayer,
                head_layers: d.head_layers,
                tail_ends: d.tail_ends.clone(),
            })
            .collect();
        assert_eq!(stripped, base.designs().collect::<Vec<_>>());
        // designs_from resumes mid-schedule-cycle.
        for start in [0u128, 1, 2, 3, 7, ext.size() - 1] {
            let tail: Vec<CustomDesign> = ext.designs_from(start).unwrap().collect();
            assert_eq!(tail, all[usize::try_from(start).unwrap()..]);
        }
        // Out-of-axis schedules don't rank: fuse depth 1 duplicates LbL
        // and fuse depth 4 exceeds the axis.
        let mut d = all[0].clone();
        d.schedule = Schedule::DepthFirst { fuse_depth: 1 };
        assert_eq!(ext.rank(&d), None);
        d.schedule = Schedule::DepthFirst { fuse_depth: 4 };
        assert_eq!(ext.rank(&d), None);
    }

    #[test]
    fn designs_from_resumes_mid_stream() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 9,
            min_ces: 2,
            max_ces: 5,
        };
        let all: Vec<CustomDesign> = space.designs().collect();
        for start in [0u128, 1, 7, all.len() as u128 - 1] {
            let tail: Vec<CustomDesign> = space.designs_from(start).unwrap().collect();
            assert_eq!(tail, all[start as usize..]);
        }
        assert!(space.designs_from(all.len() as u128).is_none());
    }

    #[test]
    fn shards_partition_the_space() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 10,
            min_ces: 2,
            max_ces: 6,
        };
        let size = space.size();
        for workers in [1usize, 2, 3, 7, 100_000] {
            let shards = space.shards(workers).unwrap();
            assert!(shards.len() <= workers.max(1));
            let mut expect_start = 0u128;
            for &(start, end) in &shards {
                assert_eq!(start, expect_start);
                assert!(end > start);
                expect_start = end;
            }
            assert_eq!(expect_start, size);
        }
    }

    #[test]
    fn sharded_iteration_covers_exactly_the_space() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 8,
            min_ces: 2,
            max_ces: 6,
        };
        let all: Vec<CustomDesign> = space.designs().collect();
        let mut sharded = Vec::new();
        for (start, end) in space.shards(3).unwrap() {
            let take = (end - start) as usize;
            sharded.extend(space.designs_from(start).unwrap().take(take));
        }
        assert_eq!(sharded, all);
    }

    #[test]
    fn rank_rejects_foreign_designs() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 8,
            min_ces: 2,
            max_ces: 4,
        };
        // Too many CEs for the space.
        let d = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 3,
            tail_ends: vec![5, 6, 7, 8],
        };
        assert_eq!(space.rank(&d), None);
        // Boundary past the model.
        let d = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 1,
            tail_ends: vec![9],
        };
        assert_eq!(space.rank(&d), None);
        // Non-increasing boundaries.
        let d = CustomDesign {
            schedule: mccm_arch::Schedule::LayerByLayer,
            head_layers: 1,
            tail_ends: vec![5, 5, 8],
        };
        assert_eq!(space.rank(&d), None);
    }

    #[test]
    fn empty_space_yields_nothing() {
        let space = CustomSpace {
            max_fuse_depth: 1,
            layers: 4,
            min_ces: 6,
            max_ces: 11,
        };
        assert_eq!(space.designs().count(), 0);
        assert_eq!(space.size(), 0);
        assert_eq!(space.shards(4), Some(vec![]));
    }

    #[test]
    fn paper_scale_space_ranks_at_the_edges() {
        // Xception's ~10^11-design space: rank/unrank must work at both
        // ends without enumerating anything.
        let space = CustomSpace::paper_range(74);
        let size = space.size();
        let first = space.unrank(0).unwrap();
        assert_eq!(space.rank(&first), Some(0));
        let last = space.unrank(size - 1).unwrap();
        assert_eq!(space.rank(&last), Some(size - 1));
        assert!(space.unrank(size).is_none());
    }
}
