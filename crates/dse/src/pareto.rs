//! Pareto-front extraction over evaluation metrics: an incremental
//! [`ParetoFront`] with O(front) online insertion, plus the batch
//! [`pareto_front`] convenience built on top of it.

use mccm_core::{Evaluation, Metric, MetricSource};

/// An incrementally maintained Pareto front over a fixed metric set.
///
/// Each insertion costs O(current front size) — for the big sweeps of
/// Use Case 3 the front stays tiny (tens of points for 100k designs), so
/// streaming insertion replaces the old all-pairs O(n²) batch pass.
/// Worker threads keep a local front each and [`merge`](Self::merge) them
/// at the end: the front of a union is the merge of the parts' fronts.
///
/// Point `a` dominates `b` when `a` is at least as good on every metric
/// and strictly better on at least one (direction per
/// [`Metric::higher_is_better`]). Mutually equal points do not dominate
/// each other, so exact duplicates coexist on the front — the same
/// semantics as the batch pass.
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    metrics: Vec<Metric>,
    entries: Vec<(Vec<f64>, T)>,
}

impl<T> ParetoFront<T> {
    /// Creates an empty front over `metrics`.
    ///
    /// # Panics
    ///
    /// If `metrics` is empty — a front over zero metrics is meaningless.
    pub fn new(metrics: &[Metric]) -> Self {
        assert!(
            !metrics.is_empty(),
            "a Pareto front needs at least one metric"
        );
        Self {
            metrics: metrics.to_vec(),
            entries: Vec::new(),
        }
    }

    /// The metric set the front is defined over.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers `item` with precomputed metric `values` (same order as
    /// [`Self::metrics`]). Returns `true` if the item joined the front
    /// (evicting any newly dominated members), `false` if it was
    /// dominated by an existing member.
    ///
    /// # Panics
    ///
    /// If `values.len()` differs from the metric count.
    pub fn offer_with_values(&mut self, item: T, values: Vec<f64>) -> bool {
        assert_eq!(values.len(), self.metrics.len(), "one value per metric");
        if self
            .entries
            .iter()
            .any(|(v, _)| dominates(&self.metrics, v, &values))
        {
            return false;
        }
        self.entries
            .retain(|(v, _)| !dominates(&self.metrics, &values, v));
        self.entries.push((values, item));
        true
    }

    /// Offers `item`, reading its metric values via [`MetricSource`].
    pub fn offer(&mut self, item: T) -> bool
    where
        T: MetricSource,
    {
        let values = self.metrics.iter().map(|m| m.value(&item)).collect();
        self.offer_with_values(item, values)
    }

    /// Merges another front (over the same metrics) into this one.
    ///
    /// # Panics
    ///
    /// If the two fronts were built over different metric sets.
    pub fn merge(&mut self, other: ParetoFront<T>) {
        assert_eq!(
            self.metrics, other.metrics,
            "fronts must share a metric set"
        );
        for (values, item) in other.entries {
            self.offer_with_values(item, values);
        }
    }

    /// Iterates the front's items (insertion order of the survivors).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, item)| item)
    }

    /// Consumes the front, yielding its items.
    pub fn into_items(self) -> Vec<T> {
        self.entries.into_iter().map(|(_, item)| item).collect()
    }
}

/// Whether `a` dominates `b` under `metrics`.
pub(crate) fn dominates(metrics: &[Metric], a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (i, m) in metrics.iter().enumerate() {
        if m.better(b[i], a[i]) {
            return false;
        }
        if m.better(a[i], b[i]) {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated evaluations under the given metrics
/// (ascending). Thin batch wrapper over [`ParetoFront`].
pub fn pareto_front(evals: &[Evaluation], metrics: &[Metric]) -> Vec<usize> {
    let mut front = ParetoFront::new(metrics);
    for (i, e) in evals.iter().enumerate() {
        let values = metrics.iter().map(|m| m.value(e)).collect();
        front.offer_with_values(i, values);
    }
    let mut indices = front.into_items();
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_core::{Bytes, Macs};

    fn eval(throughput: f64, buffer: u64) -> Evaluation {
        Evaluation {
            notation: String::new(),
            model_name: String::new(),
            board_name: String::new(),
            ce_count: 2,
            total_macs: Macs::ZERO,
            latency_s: 1.0,
            throughput_fps: throughput,
            buffer_req_bytes: Bytes::new(buffer),
            buffer_alloc_bytes: Bytes::new(buffer),
            offchip_bytes: Bytes::ZERO,
            offchip_weight_bytes: Bytes::ZERO,
            offchip_fm_bytes: Bytes::ZERO,
            memory_stall_fraction: 0.0,
            segments: vec![],
            ces: vec![],
            layers: vec![],
        }
    }

    const TB: [Metric; 2] = [Metric::Throughput, Metric::OnChipBuffers];

    #[test]
    fn extracts_non_dominated_points() {
        // (throughput up, buffer down): (10, 100) and (20, 200) trade off;
        // (5, 300) is dominated by both.
        let evals = vec![eval(10.0, 100), eval(20.0, 200), eval(5.0, 300)];
        let front = pareto_front(&evals, &TB);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn identical_points_all_survive() {
        let evals = vec![eval(10.0, 100), eval(10.0, 100)];
        let front = pareto_front(&evals, &TB);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn single_metric_front_is_the_best() {
        let evals = vec![eval(10.0, 100), eval(20.0, 200), eval(15.0, 50)];
        let front = pareto_front(&evals, &[Metric::Throughput]);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[], &[Metric::Throughput]).is_empty());
    }

    #[test]
    fn insertion_evicts_dominated_members() {
        let mut front = ParetoFront::new(&TB);
        assert!(front.offer(eval(10.0, 100).summary()));
        assert!(front.offer(eval(5.0, 50).summary())); // trades off, evicted later
        assert_eq!(front.len(), 2);
        // Dominates (5, 50), trades off with (10, 100).
        assert!(front.offer(eval(6.0, 40).summary()));
        assert_eq!(front.len(), 2);
        // Dominated by (10, 100): rejected without insertion.
        assert!(!front.offer(eval(9.0, 150).summary()));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn merge_equals_front_of_union() {
        let points: Vec<Evaluation> = vec![
            eval(10.0, 100),
            eval(20.0, 200),
            eval(5.0, 300),
            eval(15.0, 50),
            eval(20.0, 200), // duplicate of a front member
        ];
        let whole = pareto_front(&points, &TB);
        let mut left = ParetoFront::new(&TB);
        let mut right = ParetoFront::new(&TB);
        for (i, e) in points.iter().enumerate() {
            let values = TB.iter().map(|m| m.value(e)).collect();
            if i < 2 {
                left.offer_with_values(i, values);
            } else {
                right.offer_with_values(i, values);
            }
        }
        left.merge(right);
        let mut merged = left.into_items();
        merged.sort_unstable();
        assert_eq!(merged, whole);
    }

    #[test]
    #[should_panic(expected = "at least one metric")]
    fn empty_metric_set_rejected() {
        let _ = ParetoFront::<usize>::new(&[]);
    }
}
