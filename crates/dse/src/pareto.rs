//! Pareto-front extraction over evaluation metrics.

use mccm_core::{Evaluation, Metric};

/// Indices of the non-dominated evaluations under the given metrics.
///
/// Point `a` dominates `b` when `a` is at least as good on every metric
/// and strictly better on at least one (direction per
/// [`Metric::higher_is_better`]).
pub fn pareto_front(evals: &[Evaluation], metrics: &[Metric]) -> Vec<usize> {
    let values: Vec<Vec<f64>> = evals
        .iter()
        .map(|e| metrics.iter().map(|m| m.value(e)).collect())
        .collect();
    let dominates = |a: &[f64], b: &[f64]| -> bool {
        let mut strictly = false;
        for (i, m) in metrics.iter().enumerate() {
            if m.better(b[i], a[i]) {
                return false;
            }
            if m.better(a[i], b[i]) {
                strictly = true;
            }
        }
        strictly
    };
    (0..evals.len())
        .filter(|&i| !(0..evals.len()).any(|j| j != i && dominates(&values[j], &values[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(throughput: f64, buffer: u64) -> Evaluation {
        Evaluation {
            notation: String::new(),
            model_name: String::new(),
            board_name: String::new(),
            ce_count: 2,
            latency_s: 1.0,
            throughput_fps: throughput,
            buffer_req_bytes: buffer,
            buffer_alloc_bytes: buffer,
            offchip_bytes: 0,
            offchip_weight_bytes: 0,
            offchip_fm_bytes: 0,
            memory_stall_fraction: 0.0,
            segments: vec![],
            ces: vec![],
            layers: vec![],
        }
    }

    #[test]
    fn extracts_non_dominated_points() {
        // (throughput up, buffer down): (10, 100) and (20, 200) trade off;
        // (5, 300) is dominated by both.
        let evals = vec![eval(10.0, 100), eval(20.0, 200), eval(5.0, 300)];
        let front = pareto_front(&evals, &[Metric::Throughput, Metric::OnChipBuffers]);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn identical_points_all_survive() {
        let evals = vec![eval(10.0, 100), eval(10.0, 100)];
        let front = pareto_front(&evals, &[Metric::Throughput, Metric::OnChipBuffers]);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn single_metric_front_is_the_best() {
        let evals = vec![eval(10.0, 100), eval(20.0, 200), eval(15.0, 50)];
        let front = pareto_front(&evals, &[Metric::Throughput]);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[], &[Metric::Throughput]).is_empty());
    }
}
