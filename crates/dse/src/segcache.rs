//! Per-segment cost caching and **delta evaluation** of custom designs.
//!
//! NSGA-II variation is local — a head shift, one boundary move, or a
//! schedule flip touches at most two CEs — yet full evaluation pays a
//! whole-accelerator build plus both block-model cores per offspring.
//! This module exploits the fast lane's explicit decomposition
//! (`CostModel::segment_cost` + `CostModel::recombine`): a design's
//! segments are keyed by everything their cost depends on, cached across
//! designs, and a warm design is recombined from cached [`SegmentCost`]s
//! without building an accelerator at all.
//!
//! **Invariant (delta ≡ full ≡ rich):** [`Explorer::custom_summary_delta`]
//! is bit-identical to `Explorer::custom_summary_cell` for every design —
//! including the infeasible (`Ok(None)`) cases — for any cache state.
//! Cache contents only decide *how* a cost is obtained (cached copy vs
//! fresh core run), never its value, which is what keeps delta-evaluated
//! optimizer fronts worker-invariant and identical to full-evaluation
//! fronts. Enforced by `tests/fastlane_equivalence.rs` and
//! `tests/guided_dse.rs`.
//!
//! This module is the **only** place segment-cache and design-memo keys
//! are constructed (the `segment-cache-key` conformance rule) — key
//! construction encodes exactly which inputs a cached cost depends on,
//! and scattering that knowledge would let a new dependency silently
//! alias cache entries.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use mccm_arch::builder::distribute_pes;
use mccm_arch::{
    distribute_slack, notation, ArchError, CeBufferAlloc, CeContext, CeRole, InterSegmentBuffer,
    PeAllocation, Schedule,
};
use mccm_core::{
    Bandwidth, Bytes, CostModel, DesignCoupling, EvalScratch, Macs, ModelConfig, SegmentCost,
};

use crate::explorer::{CustomPoint, Explorer};
use crate::space::CustomDesign;

/// Largest pipelined head the packed segment key covers (the paper space
/// caps designs at 11 CEs, so heads at 10). Larger heads fall back to
/// full evaluation rather than widening every key.
pub const MAX_HEAD_CES: usize = 10;

/// Bound on cached segment costs per [`SegCache`] (FIFO eviction past
/// it). At ~120 bytes/entry this is a few MB per island; optimizer runs
/// mint a handful of fresh segments per design and revisit heavily, so
/// the cap only bites far past the 100k-design scale.
const SEG_CACHE_CAP: usize = 1 << 16;

/// Bound on memoized design outcomes per island. Inserts past the cap
/// are dropped (lookups stay correct; a re-visit of a dropped design
/// costs budget again, exactly as if it were new) — within every test
/// and bench budget the cap never binds, so bounded and unbounded memos
/// produce identical trajectories.
const DESIGN_MEMO_CAP: usize = 1 << 17;

/// Bound on locally mirrored `ce_context` results (insert-drop past it,
/// as with the design memo — lookups stay correct either way). Matches
/// the builder's own memo cap.
const CTX_CACHE_CAP: usize = 1 << 18;

/// Multiply-rotate hasher (the FxHash construction) for the hot cache
/// maps. Segment keys are probed a dozen times per delta evaluation and
/// `SegKey::Pipe` spans ~120 bytes, where the default SipHash costs more
/// than the recombination it guards; these maps never face untrusted
/// keys, so HashDoS resistance buys nothing here.
#[derive(Debug, Default)]
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i.into());
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i.into());
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i.into());
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        // Mixing a u128 as two words is the hash, not a narrowing — both
        // halves enter the state.
        #[allow(clippy::cast_possible_truncation)]
        {
            self.add(i as u64);
            self.add((i >> 64) as u64);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        // usize is at most 64 bits on every supported target.
        #[allow(clippy::cast_possible_truncation)]
        self.add(i as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Everything one segment's [`SegmentCost`] depends on, given a fixed
/// (CNN, board, precision, model config): the layer range, the executor
/// shape, the granted buffer bytes, and the boundary placement. Two
/// designs sharing a key share the cost bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SegKey {
    /// A single-CE tail segment. `pes` determines the memoized
    /// parallelism (and with it the tile/stream minimums); `bytes` is the
    /// granted capacity after slack distribution.
    Single {
        first: usize,
        len: usize,
        pes: u32,
        schedule: Schedule,
        bytes: u64,
        input_off: bool,
        output_off: bool,
    },
    /// The pipelined head block (always segment 0 over layers
    /// `0..len`, one CE per layer, so `input_off` is always true and the
    /// layer range is implied by `len`). Unused stages stay zeroed.
    Pipe {
        len: usize,
        stages: [(u32, u64); MAX_HEAD_CES],
        output_off: bool,
    },
}

/// Compact interned form of a [`CustomDesign`] for the per-island design
/// memo — replaces cloning whole designs (head + boundary `Vec` +
/// schedule) into `HashMap` keys. Paper-space designs pack into one
/// `u128`: head in bits 0..8, schedule (0 = layer-by-layer, else the
/// fuse depth ≥ 2) in 8..16, tail-segment count in 16..20, then up to
/// ten interior boundaries at 10 bits each from bit 20. The terminal
/// boundary is always the layer count — constant within one search — so
/// it is not packed. Designs outside those ranges keep the boxed form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum DesignKey {
    Packed(u128),
    Big(Box<CustomDesign>),
}

impl DesignKey {
    pub(crate) fn of(design: &CustomDesign) -> Self {
        let big = || DesignKey::Big(Box::new(design.clone()));
        // `fuse_depth()` is injective over space members: layer-by-layer
        // is depth 1 and every depth-first member has depth ≥ 2 (depth-1
        // depth-first is excluded from the space as a duplicate).
        let schedule = design.schedule.fuse_depth();
        let schedule = if matches!(design.schedule, Schedule::LayerByLayer) {
            0
        } else {
            schedule
        };
        let tails = design.tail_ends.len();
        if design.head_layers > 0xFF || schedule > 0xFF || tails == 0 || tails > 11 {
            return big();
        }
        let mut packed =
            design.head_layers as u128 | (schedule as u128) << 8 | (tails as u128) << 16;
        for (i, &end) in design.tail_ends[..tails - 1].iter().enumerate() {
            if end > 0x3FF {
                return big();
            }
            packed |= (end as u128) << (20 + 10 * i);
        }
        DesignKey::Packed(packed)
    }
}

/// Per-island memo of design outcomes (`None` = infeasible), keyed by
/// [`DesignKey`], bounded by [`DESIGN_MEMO_CAP`] with insert-drop
/// semantics and an eviction counter.
#[derive(Debug, Default)]
pub(crate) struct DesignMemo {
    map: HashMap<DesignKey, Option<Vec<f64>>, FxBuildHasher>,
    hits: u64,
    evictions: u64,
}

impl DesignMemo {
    pub(crate) fn get(&mut self, key: &DesignKey) -> Option<&Option<Vec<f64>>> {
        let hit = self.map.get(key);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    pub(crate) fn insert(&mut self, key: DesignKey, values: Option<Vec<f64>>) {
        if self.map.len() < DESIGN_MEMO_CAP {
            self.map.insert(key, values);
        } else {
            self.evictions += 1;
        }
    }

    /// This memo's counters as a [`CacheStats`] record (segment counters
    /// zero — the segment cache is tracked separately).
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            memo_hits: self.hits,
            memo_evictions: self.evictions,
            ..CacheStats::default()
        }
    }
}

/// Segment-cache and design-memo statistics of one optimizer run (or one
/// island), summed island-wise into [`crate::GuidedFront`] and surfaced
/// through the facade's Outcome JSON and `mccm serve stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Segment costs served from cache.
    pub seg_hits: u64,
    /// Segment costs computed fresh (and inserted).
    pub seg_misses: u64,
    /// Segment entries evicted (FIFO) past the cache bound.
    pub seg_evictions: u64,
    /// Designs recombined entirely from cached segments — no
    /// accelerator build, no block-model core runs.
    pub delta_recombines: u64,
    /// Designs that paid a full accelerator build (≥ 1 segment miss).
    pub full_builds: u64,
    /// Design outcomes served from the per-island memo (budget-free).
    pub memo_hits: u64,
    /// Design-memo inserts dropped past the memo bound.
    pub memo_evictions: u64,
}

impl CacheStats {
    /// Accumulates another stats record into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.seg_hits += other.seg_hits;
        self.seg_misses += other.seg_misses;
        self.seg_evictions += other.seg_evictions;
        self.delta_recombines += other.delta_recombines;
        self.full_builds += other.full_builds;
        self.memo_hits += other.memo_hits;
        self.memo_evictions += other.memo_evictions;
    }

    /// Fraction of segment lookups served from cache (0 when none).
    pub fn seg_hit_rate(&self) -> f64 {
        let total = self.seg_hits + self.seg_misses;
        if total == 0 {
            return 0.0;
        }
        // Counters sit far below 2^53; the ratio is exact enough for a
        // diagnostic rate.
        #[allow(clippy::cast_precision_loss)]
        let rate = self.seg_hits as f64 / total as f64;
        rate
    }
}

/// Bounded per-island cache of [`SegmentCost`]s keyed by [`SegKey`],
/// plus the reusable staging buffers of the delta path (one `SegCache`
/// per island/worker — it is not shared across threads, which keeps
/// eviction order deterministic per island).
#[derive(Debug, Default)]
pub struct SegCache {
    map: HashMap<SegKey, SegmentCost, FxBuildHasher>,
    fifo: VecDeque<SegKey>,
    /// Rendered notation strings per design — `notation::format` costs
    /// more than the whole recombination on the warm path, and the string
    /// is a pure function of the design under this cache's explorer.
    notations: HashMap<DesignKey, String, FxBuildHasher>,
    /// Lock-free front for the builder's `ce_context` memo. The builder
    /// memo is shared behind an `RwLock` and hashes with SipHash; a dozen
    /// probes per delta evaluation make that the dominant warm-path cost.
    /// Precision and options are fixed per explorer (and a cache must not
    /// be shared across explorers), so the key needs no precision field.
    ctxs: HashMap<(u32, usize, usize, CeRole, Schedule), CeContext, FxBuildHasher>,
    hits: u64,
    misses: u64,
    evictions: u64,
    delta_recombines: u64,
    full_builds: u64,
    // Reusable per-design staging (cleared per evaluation).
    workloads: Vec<u64>,
    allocs: Vec<CeBufferAlloc>,
    inter: Vec<InterSegmentBuffer>,
    keys: Vec<SegKey>,
    staged: Vec<Option<SegmentCost>>,
    costs: Vec<SegmentCost>,
}

impl SegCache {
    /// Creates an empty cache (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached segment entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// This cache's counters as a [`CacheStats`] record (memo counters
    /// zero — the design memo is tracked separately).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            seg_hits: self.hits,
            seg_misses: self.misses,
            seg_evictions: self.evictions,
            delta_recombines: self.delta_recombines,
            full_builds: self.full_builds,
            memo_hits: 0,
            memo_evictions: 0,
        }
    }

    fn insert(&mut self, key: SegKey, cost: SegmentCost) {
        if self.map.len() >= SEG_CACHE_CAP {
            if let Some(oldest) = self.fifo.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        if self.map.insert(key, cost).is_none() {
            self.fifo.push_back(key);
        }
    }
}

/// Sweep-invariant inputs of the delta path for one `(CNN, board)` pair,
/// precomputed once per optimizer run: MAC prefix sums for the PE split,
/// per-layer handoff sizes, and the board/config terms of
/// [`DesignCoupling`]. Uses the default [`ModelConfig`] — the same
/// configuration `Explorer::custom_summary_cell` evaluates under.
#[derive(Debug, Clone)]
pub struct DeltaContext {
    /// `mac_prefix[i]` = Σ MACs of layers `0..i` (length `n + 1`).
    mac_prefix: Vec<u64>,
    /// Handoff buffer need after layer `l`: 2 × its OFM bytes (custom
    /// designs coarse-pipeline disjoint blocks, so every handoff is
    /// double-buffered).
    handoff_bytes: Vec<u64>,
    total_macs: Macs,
    dsps: u32,
    uniform_pes: bool,
    bram_bytes: u64,
    cycle_time_s: f64,
    bandwidth: Bandwidth,
}

impl DeltaContext {
    /// Precomputes the context for `explorer`'s model, board, and builder
    /// options.
    pub fn new(explorer: &Explorer) -> Self {
        let config = ModelConfig::default();
        let convs = explorer.model().conv_view();
        let board = explorer.builder().board();
        let precision = explorer.builder().precision();
        let mut mac_prefix = Vec::with_capacity(convs.len() + 1);
        mac_prefix.push(0u64);
        for c in &convs {
            mac_prefix.push(mac_prefix.last().expect("non-empty") + c.macs);
        }
        let handoff_bytes = convs
            .iter()
            .map(|c| 2 * c.ofm.elements() * u64::from(precision.activation_bytes))
            .collect();
        Self {
            mac_prefix,
            handoff_bytes,
            total_macs: convs.iter().map(|c| Macs::new(c.macs)).sum(),
            dsps: board.dsps,
            uniform_pes: matches!(
                explorer.builder().options().pe_allocation,
                PeAllocation::Uniform
            ),
            bram_bytes: board.bram_bytes(),
            cycle_time_s: board.cycle_time_s(),
            bandwidth: Bandwidth::new(board.bytes_per_cycle() * config.bandwidth_derate),
        }
    }

    fn macs(&self, first: usize, end: usize) -> u64 {
        self.mac_prefix[end] - self.mac_prefix[first]
    }
}

impl Explorer {
    /// Delta twin of `custom_summary_cell`: evaluates a custom design by
    /// recombining cached per-segment costs, falling back to one full
    /// build (which populates the cache) when any segment misses.
    /// `Ok(None)` when infeasible, `Err` on real faults — **bit-identical
    /// to the full path in all three cases, for any cache state**.
    ///
    /// `ctx` must have been built from this explorer (same model, board,
    /// precision, builder options), and `cache` must not be shared across
    /// explorers with different contexts.
    ///
    /// # Errors
    ///
    /// Propagates real builder faults, exactly as `custom_summary_cell`.
    pub fn custom_summary_delta(
        &self,
        design: &CustomDesign,
        ctx: &DeltaContext,
        cache: &mut SegCache,
        scratch: &mut EvalScratch,
    ) -> Result<Option<CustomPoint>, ArchError> {
        let spec = match design.to_spec(self.model()) {
            Ok(spec) => spec,
            Err(ArchError::Infeasible { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        let n_ces = spec.ce_count();
        // Mirror of the builder's platform check — the only way a
        // to_spec-valid custom design fails to build.
        if usize::try_from(ctx.dsps).expect("u32 fits usize") < n_ces {
            return Ok(None);
        }
        let h = design.head_layers;
        if h > MAX_HEAD_CES {
            // Key would not pack the head; pay the full path.
            cache.full_builds += 1;
            return self.custom_summary_cell(design, scratch);
        }

        // PE split from per-CE workloads, exactly as the full build.
        cache.workloads.clear();
        for l in 0..h {
            cache.workloads.push(ctx.macs(l, l + 1));
        }
        let mut first = h;
        for &end in &design.tail_ends {
            cache.workloads.push(ctx.macs(first, end));
            first = end;
        }
        if ctx.uniform_pes {
            cache.workloads.clear();
            cache.workloads.resize(n_ces, 1);
        }
        let pes = distribute_pes(ctx.dsps, &cache.workloads);

        // Per-CE contexts through the builder's memoized hook, then the
        // whole-design slack distribution over their needs.
        cache.allocs.clear();
        for (i, &p) in pes.iter().enumerate().take(h) {
            let key = (p, i, 1usize, CeRole::Pipelined, Schedule::LayerByLayer);
            let c = match cache.ctxs.get(&key) {
                Some(c) => *c,
                None => {
                    let c = self.builder().ce_context(
                        p,
                        i,
                        1,
                        CeRole::Pipelined,
                        Schedule::LayerByLayer,
                    );
                    if cache.ctxs.len() < CTX_CACHE_CAP {
                        cache.ctxs.insert(key, c);
                    }
                    c
                }
            };
            cache.allocs.push(c.needs);
        }
        let mut first = h;
        for (j, &end) in design.tail_ends.iter().enumerate() {
            let key = (
                pes[h + j],
                first,
                end - first,
                CeRole::Single,
                design.schedule,
            );
            let c = match cache.ctxs.get(&key) {
                Some(c) => *c,
                None => {
                    let c = self.builder().ce_context(
                        pes[h + j],
                        first,
                        end - first,
                        CeRole::Single,
                        design.schedule,
                    );
                    if cache.ctxs.len() < CTX_CACHE_CAP {
                        cache.ctxs.insert(key, c);
                    }
                    c
                }
            };
            cache.allocs.push(c.needs);
            first = end;
        }
        cache.inter.clear();
        cache.inter.push(InterSegmentBuffer {
            bytes_needed: ctx.handoff_bytes[h - 1],
            on_chip: false,
            pipelined_handoff: true,
            same_block: false,
        });
        for &end in &design.tail_ends[..design.tail_ends.len() - 1] {
            cache.inter.push(InterSegmentBuffer {
                bytes_needed: ctx.handoff_bytes[end - 1],
                on_chip: false,
                pipelined_handoff: true,
                same_block: false,
            });
        }
        // Never errors: an unfit plan degrades to minimum grants with
        // off-chip handoffs, exactly as `plan_buffers`.
        distribute_slack(
            &mut cache.allocs,
            |i| {
                if i < h {
                    CeRole::Pipelined
                } else {
                    CeRole::Single
                }
            },
            &mut cache.inter,
            ctx.bram_bytes,
        );

        // Segment keys: head block, then one single-CE segment per tail.
        cache.keys.clear();
        let mut stages = [(0u32, 0u64); MAX_HEAD_CES];
        for i in 0..h {
            stages[i] = (pes[i], cache.allocs[i].bytes);
        }
        cache.keys.push(SegKey::Pipe {
            len: h,
            stages,
            output_off: !cache.inter[0].on_chip,
        });
        let mut first = h;
        for (j, &end) in design.tail_ends.iter().enumerate() {
            let input_off = !cache.inter[j].on_chip;
            let output_off = j + 1 == design.tail_ends.len() || !cache.inter[j + 1].on_chip;
            cache.keys.push(SegKey::Single {
                first,
                len: end - first,
                pes: pes[h + j],
                schedule: design.schedule,
                bytes: cache.allocs[h + j].bytes,
                input_off,
                output_off,
            });
            first = end;
        }

        // Probe. Cached costs carry the block identity of the design they
        // were computed in; re-stamp it for this design's CE numbering
        // (the cost fields themselves are identity-independent).
        cache.staged.clear();
        let mut all_hit = true;
        for (idx, key) in cache.keys.iter().enumerate() {
            cache.staged.push(cache.map.get(key).map(|&c| {
                let (first_ce, ce_len) = if idx == 0 { (0, h) } else { (h + idx - 1, 1) };
                SegmentCost {
                    first_ce,
                    ce_len,
                    ..c
                }
            }));
            all_hit &= cache.staged[idx].is_some();
        }

        let config = ModelConfig::default();
        if all_hit {
            cache.hits += cache.keys.len() as u64;
            cache.delta_recombines += 1;
            let req: u64 = cache.allocs.iter().map(|a| a.ideal_bytes).sum::<u64>()
                + cache.inter.iter().map(|b| b.bytes_needed).sum::<u64>();
            let granted: u64 = cache.allocs.iter().map(|a| a.bytes).sum::<u64>()
                + cache
                    .inter
                    .iter()
                    .filter(|b| b.on_chip)
                    .map(|b| b.bytes_needed)
                    .sum::<u64>();
            let dkey = DesignKey::of(design);
            let notation = match cache.notations.get(&dkey) {
                Some(s) => s.clone(),
                None => {
                    let s = notation::format(&spec);
                    if cache.notations.len() < DESIGN_MEMO_CAP {
                        cache.notations.insert(dkey, s.clone());
                    }
                    s
                }
            };
            let coupling = DesignCoupling {
                notation,
                ce_count: n_ces,
                total_macs: ctx.total_macs,
                coarse_pipeline: spec.coarse_pipeline,
                cycle_time_s: ctx.cycle_time_s,
                bandwidth: ctx.bandwidth,
                buffer_req_bytes: Bytes::new(req),
                buffer_alloc_bytes: Bytes::new(granted),
            };
            cache.costs.clear();
            cache
                .costs
                .extend(cache.staged.iter().map(|c| c.expect("all hit")));
            let costs = std::mem::take(&mut cache.costs);
            let summary = CostModel::recombine(coupling, &costs, scratch);
            cache.costs = costs;
            return Ok(Some(CustomPoint {
                design: design.clone(),
                summary,
            }));
        }

        // ≥ 1 segment missed: one full build, fresh cores only for the
        // missing segments, cache them, recombine.
        let acc = match self.builder().build(&spec) {
            Ok(acc) => acc,
            Err(ArchError::Infeasible { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        cache.full_builds += 1;
        #[cfg(debug_assertions)]
        {
            // The hook-planned contexts must be the built plan, byte for
            // byte — the property every cached cost's validity rests on.
            for (i, a) in cache.allocs.iter().enumerate() {
                debug_assert_eq!(a, &acc.buffers.ce[i], "CE {i} alloc diverged");
                debug_assert_eq!(pes[i], acc.ces[i].pes, "CE {i} PE split diverged");
            }
            for (i, b) in cache.inter.iter().enumerate() {
                debug_assert_eq!(b, &acc.buffers.inter_segment[i], "handoff {i} diverged");
            }
        }
        let mut staged = std::mem::take(&mut cache.staged);
        for (idx, slot) in staged.iter_mut().enumerate() {
            if let Some(_cost) = slot {
                cache.hits += 1;
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    *_cost,
                    CostModel::segment_cost(&acc, idx, &config, scratch),
                    "cached segment {idx} diverged from a fresh core run"
                );
            } else {
                let cost = CostModel::segment_cost(&acc, idx, &config, scratch);
                cache.insert(cache.keys[idx], cost);
                cache.misses += 1;
                *slot = Some(cost);
            }
        }
        cache.costs.clear();
        cache
            .costs
            .extend(staged.iter().map(|c| c.expect("all staged")));
        cache.staged = staged;
        let costs = std::mem::take(&mut cache.costs);
        let summary =
            CostModel::recombine(CostModel::design_coupling(&acc, &config), &costs, scratch);
        cache.costs = costs;
        // Seed the notation memo so this design's first all-hit revisit
        // skips the formatter along with the build.
        if cache.notations.len() < DESIGN_MEMO_CAP {
            cache
                .notations
                .insert(DesignKey::of(design), summary.notation.clone());
        }
        Ok(Some(CustomPoint {
            design: design.clone(),
            summary,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_fpga::FpgaBoard;

    use crate::sampler::CustomSampler;
    use mccm_cnn::zoo;

    #[test]
    fn design_key_packs_paper_space_designs() {
        let d = CustomDesign {
            head_layers: 3,
            tail_ends: vec![20, 52, 74],
            schedule: Schedule::LayerByLayer,
        };
        assert!(matches!(DesignKey::of(&d), DesignKey::Packed(_)));
        let df = CustomDesign {
            schedule: Schedule::DepthFirst { fuse_depth: 3 },
            ..d.clone()
        };
        assert!(matches!(DesignKey::of(&df), DesignKey::Packed(_)));
        assert_ne!(DesignKey::of(&d), DesignKey::of(&df));
        // Out-of-range designs take the honest boxed fallback.
        let huge = CustomDesign {
            head_layers: 300,
            tail_ends: vec![301, 2000],
            schedule: Schedule::LayerByLayer,
        };
        assert!(matches!(DesignKey::of(&huge), DesignKey::Big(_)));
    }

    #[test]
    fn design_keys_are_injective_over_sampled_designs() {
        let space = crate::space::CustomSpace::paper_range(74).with_max_fuse_depth(3);
        let mut sampler = CustomSampler::new(space, 21);
        let mut seen: HashMap<DesignKey, CustomDesign> = HashMap::new();
        for _ in 0..2000 {
            let d = sampler.sample();
            if let Some(prev) = seen.insert(DesignKey::of(&d), d.clone()) {
                assert_eq!(prev, d, "two designs collided on one key");
            }
        }
    }

    #[test]
    fn delta_matches_full_on_sampled_designs_bit_for_bit() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let ctx = DeltaContext::new(&e);
        let mut cache = SegCache::new();
        let mut scratch = EvalScratch::new();
        let mut scratch_full = EvalScratch::new();
        let space = e.paper_space().with_max_fuse_depth(3);
        let mut sampler = CustomSampler::new(space, 5);
        for _ in 0..200 {
            let d = sampler.sample();
            let delta = e
                .custom_summary_delta(&d, &ctx, &mut cache, &mut scratch)
                .unwrap();
            let full = e.custom_summary_cell(&d, &mut scratch_full).unwrap();
            assert_eq!(
                delta.map(|p| p.summary),
                full.map(|p| p.summary),
                "delta diverged on {d:?}"
            );
        }
        let stats = cache.stats();
        assert!(stats.seg_hits > 0, "repeat sampling must warm the cache");
        assert!(stats.seg_misses > 0);
    }

    #[test]
    fn warm_cache_recombines_without_building() {
        let m = zoo::mobilenet_v2();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let ctx = DeltaContext::new(&e);
        let mut cache = SegCache::new();
        let mut scratch = EvalScratch::new();
        let d = CustomDesign {
            head_layers: 3,
            tail_ends: vec![20, 52],
            schedule: Schedule::LayerByLayer,
        };
        let cold = e
            .custom_summary_delta(&d, &ctx, &mut cache, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(cache.stats().full_builds, 1);
        assert_eq!(cache.stats().delta_recombines, 0);
        let warm = e
            .custom_summary_delta(&d, &ctx, &mut cache, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(cache.stats().full_builds, 1, "warm revisit must not build");
        assert_eq!(cache.stats().delta_recombines, 1);
        assert_eq!(cold.summary, warm.summary);
    }

    #[test]
    fn infeasible_designs_agree_with_the_full_path() {
        // A board with fewer DSPs than CEs: both paths must say None.
        let m = zoo::mobilenet_v2();
        let tiny = FpgaBoard::new("tiny", 3, mccm_fpga::MiB(0.5), 1.0);
        let e = Explorer::new(&m, &tiny);
        let ctx = DeltaContext::new(&e);
        let mut cache = SegCache::new();
        let mut scratch = EvalScratch::new();
        let d = CustomDesign {
            head_layers: 3,
            tail_ends: vec![20, 52],
            schedule: Schedule::LayerByLayer,
        };
        assert_eq!(
            e.custom_summary_delta(&d, &ctx, &mut cache, &mut scratch)
                .unwrap(),
            None
        );
        assert_eq!(e.custom_summary_cell(&d, &mut scratch).unwrap(), None);
    }
}
