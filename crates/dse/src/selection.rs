//! Best-architecture selection with the paper's 10% tie rule (Table V).

use mccm_arch::templates::Architecture;
use mccm_core::Metric;

use crate::explorer::BaselinePoint;

/// A Table V cell: for one metric, which architectures achieve the best
/// result (ties within `tie_frac`) and with which CE count.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionCell {
    /// The metric selected on.
    pub metric: Metric,
    /// Winning `(architecture, CE count, value)` triples; multiple entries
    /// indicate a tie, as in the paper's multi-colored cells.
    pub winners: Vec<(Architecture, usize, f64)>,
}

/// The paper's tie tolerance: "We consider results within a 10% difference
/// as a tie to account for estimation errors."
pub const PAPER_TIE_FRAC: f64 = 0.10;

/// Selects the best architectures for one metric over a baseline sweep.
///
/// Per architecture, the best instance (over CE counts) is found first;
/// architectures whose best lies within `tie_frac` of the overall best are
/// winners, reported with their best instance's CE count.
///
/// **Tie-breaking is explicit and deterministic:** when two instances of
/// the same architecture achieve the exact same value, the one with fewer
/// CEs wins (fewer engines at equal quality is the cheaper design); among
/// equal CE counts, the earlier point in `points` wins. The old `reduce`
/// silently kept whichever instance happened to iterate first, so callers
/// that reordered or deduplicated a sweep got different winning CE counts
/// for the same data.
pub fn select_best(points: &[BaselinePoint], metric: Metric, tie_frac: f64) -> SelectionCell {
    let mut per_arch: Vec<(Architecture, usize, f64)> = Vec::new();
    for arch in Architecture::ALL {
        let best = points
            .iter()
            .filter(|p| p.architecture == arch)
            .map(|p| (p.ces, metric.value(&p.eval)))
            .reduce(|a, b| {
                if metric.better(b.1, a.1) || (b.1 == a.1 && b.0 < a.0) {
                    b
                } else {
                    a
                }
            });
        if let Some((ces, value)) = best {
            per_arch.push((arch, ces, value));
        }
    }
    let overall =
        per_arch
            .iter()
            .map(|&(_, _, v)| v)
            .reduce(|a, b| if metric.better(b, a) { b } else { a });
    let winners = match overall {
        None => Vec::new(),
        Some(best) => per_arch
            .into_iter()
            .filter(|&(_, _, v)| metric.within_tie(v, best, tie_frac))
            .collect(),
    };
    SelectionCell { metric, winners }
}

/// Selects all four metrics (one Table V column).
pub fn select_all_metrics(points: &[BaselinePoint], tie_frac: f64) -> Vec<SelectionCell> {
    Metric::ALL
        .iter()
        .map(|&m| select_best(points, m, tie_frac))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use mccm_cnn::zoo;
    use mccm_fpga::FpgaBoard;

    fn sweep() -> Vec<BaselinePoint> {
        let m = zoo::resnet50();
        Explorer::new(&m, &FpgaBoard::zc706())
            .sweep_baselines(2..=11)
            .unwrap()
    }

    #[test]
    fn every_metric_has_winners() {
        let points = sweep();
        for cell in select_all_metrics(&points, PAPER_TIE_FRAC) {
            assert!(!cell.winners.is_empty(), "{:?}", cell.metric);
            assert!(cell.winners.len() <= 3);
            for &(_, ces, _) in &cell.winners {
                assert!((2..=11).contains(&ces));
            }
        }
    }

    #[test]
    fn winners_are_within_tie_of_each_other() {
        let points = sweep();
        for metric in Metric::ALL {
            let cell = select_best(&points, metric, PAPER_TIE_FRAC);
            let best = cell
                .winners
                .iter()
                .map(|&(_, _, v)| v)
                .reduce(|a, b| if metric.better(b, a) { b } else { a })
                .unwrap();
            for &(_, _, v) in &cell.winners {
                assert!(metric.within_tie(v, best, PAPER_TIE_FRAC));
            }
        }
    }

    #[test]
    fn zero_tolerance_gives_single_winner() {
        let points = sweep();
        let cell = select_best(&points, Metric::Latency, 0.0);
        assert_eq!(cell.winners.len(), 1);
    }

    #[test]
    fn empty_sweep_gives_empty_cell() {
        let cell = select_best(&[], Metric::Latency, PAPER_TIE_FRAC);
        assert!(cell.winners.is_empty());
    }

    #[test]
    fn exact_value_ties_prefer_fewer_ces_regardless_of_order() {
        // Constructed tie: the same architecture hits the identical best
        // value at 7 and at 3 CEs. The explicit tie-break must report the
        // 3-CE instance whichever order the points arrive in.
        let m = zoo::resnet50();
        let e = Explorer::new(&m, &FpgaBoard::zc706());
        let base = e.sweep_baselines(2..=2).unwrap();
        let mk = |ces: usize, latency: f64| {
            let mut p = base[0].clone();
            p.ces = ces;
            p.eval.latency_s = latency;
            p
        };
        let forward = vec![mk(7, 0.5), mk(3, 0.5), mk(5, 0.9)];
        let backward = vec![mk(3, 0.5), mk(7, 0.5), mk(5, 0.9)];
        for points in [forward, backward] {
            let cell = select_best(&points, Metric::Latency, 0.0);
            assert_eq!(cell.winners.len(), 1);
            let (_, ces, value) = cell.winners[0];
            assert_eq!(ces, 3, "exact tie must resolve to the fewer-CE instance");
            assert_eq!(value, 0.5);
        }
    }
}
