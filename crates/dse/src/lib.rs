//! Design-space exploration for multiple-CE CNN accelerators on top of the
//! MCCM cost model.
//!
//! Implements the machinery behind the paper's Use Cases 1 and 3: baseline
//! sweeps over the three state-of-the-art architectures and CE counts
//! (Table V, Figs. 5/8), best-architecture selection with the 10% tie rule,
//! Pareto-front extraction, and seeded random sampling of the custom
//! Hybrid-head/Segmented-tail space whose fast evaluation the paper
//! showcases (Fig. 10: 100 000 designs in minutes).
//!
//! ```
//! use mccm_cnn::zoo;
//! use mccm_dse::{select_all_metrics, Explorer, PAPER_TIE_FRAC};
//! use mccm_fpga::FpgaBoard;
//!
//! let model = zoo::mobilenet_v2();
//! let explorer = Explorer::new(&model, &FpgaBoard::zc706());
//! let sweep = explorer.sweep_baselines(2..=11);
//! for cell in select_all_metrics(&sweep, PAPER_TIE_FRAC) {
//!     assert!(!cell.winners.is_empty());
//! }
//! ```

#![warn(missing_docs)]

mod explorer;
mod pareto;
mod sampler;
mod selection;
mod space;

pub use explorer::{BaselinePoint, DesignPoint, Explorer};
pub use pareto::pareto_front;
pub use sampler::CustomSampler;
pub use selection::{select_all_metrics, select_best, SelectionCell, PAPER_TIE_FRAC};
pub use space::{binomial, CustomDesign, CustomSpace};
