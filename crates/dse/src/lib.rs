//! Design-space exploration for multiple-CE CNN accelerators on top of the
//! MCCM cost model.
//!
//! Implements the machinery behind the paper's Use Cases 1 and 3: baseline
//! sweeps over the three state-of-the-art architectures and CE counts
//! (Table V, Figs. 5/8), best-architecture selection with the 10% tie rule,
//! incremental Pareto-front extraction, and seeded random sampling of the
//! custom Hybrid-head/Segmented-tail space whose fast evaluation the paper
//! showcases (Fig. 10: 100 000 designs in minutes).
//!
//! Every sweep has a sharded, multi-threaded `par_*` twin that returns
//! bit-identical results for any worker count (see [`crate::Explorer`]
//! and the `parallel` module docs), and the custom space supports full
//! lexicographic enumeration with rank/unrank for contiguous sharding
//! ([`CustomSpace::designs`], [`CustomSpace::shards`]).
//!
//! The `*_summaries` sweeps (and `par_evaluate_space`) run on the
//! **summary fast lane**: per-worker `EvalScratch` buffers feed
//! `CostModel::evaluate_summary`, whose output is bit-identical to
//! `evaluate(...).summary()` but skips all report construction — the
//! rich [`DesignPoint`] sweeps remain available when per-segment /
//! per-layer breakdowns are needed.
//!
//! ```
//! use mccm_cnn::zoo;
//! use mccm_dse::{select_all_metrics, Explorer, PAPER_TIE_FRAC};
//! use mccm_fpga::FpgaBoard;
//!
//! let model = zoo::mobilenet_v2();
//! let explorer = Explorer::new(&model, &FpgaBoard::zc706());
//! let sweep = explorer.par_sweep_baselines(2..=11, 2).unwrap();
//! assert_eq!(sweep.len(), explorer.sweep_baselines(2..=11).unwrap().len());
//! for cell in select_all_metrics(&sweep, PAPER_TIE_FRAC) {
//!     assert!(!cell.winners.is_empty());
//! }
//! ```

#![warn(missing_docs)]

mod enumerate;
mod error;
mod explorer;
mod optimizer;
mod parallel;
mod pareto;
mod quality;
mod sampler;
mod segcache;
mod selection;
mod space;

pub use enumerate::DesignIter;
pub use error::ExploreError;
pub use explorer::{default_max_attempts, BaselinePoint, CustomPoint, DesignPoint, Explorer};
/// Re-exported from `mccm-core` so existing `mccm_dse::CancelToken`
/// call sites keep working (the simulator shares the same token type).
pub use mccm_core::CancelToken;
pub use optimizer::{GuidedFront, OptimizerConfig};
pub use parallel::{par_pareto_indices, SampleRun, EXHAUSTIVE_LIMIT};
pub use pareto::{pareto_front, ParetoFront};
pub use quality::{
    compare_fronts, coverage, hypervolume, union_bounds, FrontComparison, MetricBounds,
};
pub use sampler::{sample_attempt, CustomSampler};
pub use segcache::{CacheStats, DeltaContext, SegCache};
pub use selection::{select_all_metrics, select_best, SelectionCell, PAPER_TIE_FRAC};
pub use space::{binomial, binomial_checked, CustomDesign, CustomSpace};
