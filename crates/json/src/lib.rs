//! A minimal, dependency-free JSON value with a strict parser and a
//! deterministic writer — the wire format of the MCCM scenario API
//! (re-exported by the facade as `mccm::json`) and of the `mccm-calib`
//! calibration store.
//!
//! The workspace already emits hand-rolled JSON (`mccm-bench`'s
//! `BENCH_*.json` trajectories); this crate completes the round trip
//! with a parser so scenario files can be *read* without pulling in a
//! serialization dependency. Design points:
//!
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map),
//!   so serialization is deterministic — the property the CLI's
//!   byte-identical output guarantee rests on. Duplicate keys are
//!   rejected at parse time.
//! * **Numbers are `f64`** with an integer-aware writer: values that are
//!   mathematically integral and within `f64`'s exact-integer range print
//!   without a decimal point, so `{"budget": 4000}` round-trips as
//!   `4000`, not `4000.0`.
//! * **Errors carry byte offsets** ([`JsonError`]), mirroring
//!   `ArchError::Parse`.
//!
//! # Examples
//!
//! ```
//! use mccm_json::Json;
//!
//! let v = Json::parse(r#"{"model": {"zoo": "xception"}, "batch": 4}"#).unwrap();
//! assert_eq!(v.get("model").and_then(|m| m.get("zoo")).and_then(Json::as_str),
//!            Some("xception"));
//! assert_eq!(v.get("batch").and_then(Json::as_u64), Some(4));
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper inputs error instead
/// of risking stack exhaustion.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`; see the module docs for how
    /// integral values are written back).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

/// Error produced when parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Explanation.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.detail
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object (builder entry point for [`Self::push`]).
    pub fn object() -> Self {
        Self::Object(Vec::new())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object — object construction is a
    /// programming task, not a data-driven one.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Self::Object(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::push on a non-object"),
        }
    }

    /// Value of `key` when `self` is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's key/value pairs, when `self` is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string content, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, when `self` is a non-negative
    /// integral number within `u64` range. The bound is strict:
    /// `u64::MAX as f64` rounds up to 2^64, which the `as` cast would
    /// silently saturate, so that value is rejected rather than clamped.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as a `usize` (via [`Self::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean value, when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text (strict: exactly one value, no trailing garbage,
    /// no duplicate object keys, nesting capped at a safe depth).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indentation, one key per line, and a
    /// trailing newline — the canonical on-disk form of scenario and
    /// outcome files.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => write_number(out, *n),
            Self::Str(s) => write_string(out, s),
            Self::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Self::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Self::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Self::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Self::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Self::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Self::Array(items)
    }
}

// The dimensional newtypes serialize as their bare numeric value, so the
// JSON wire format is byte-identical to the pre-typed-quantity output.
impl From<mccm_core::Cycles> for Json {
    fn from(v: mccm_core::Cycles) -> Self {
        Self::from(v.get())
    }
}

impl From<mccm_core::Bytes> for Json {
    fn from(v: mccm_core::Bytes) -> Self {
        Self::from(v.get())
    }
}

impl From<mccm_core::Macs> for Json {
    fn from(v: mccm_core::Macs) -> Self {
        Self::from(v.get())
    }
}

impl From<mccm_core::Pes> for Json {
    fn from(v: mccm_core::Pes) -> Self {
        Self::from(v.get())
    }
}

impl From<mccm_core::Joules> for Json {
    fn from(v: mccm_core::Joules) -> Self {
        Self::Num(v.get())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Writes a number: integral values within `f64`'s exact range print as
/// integers, everything else through Rust's shortest-round-trip `f64`
/// formatting. Non-finite values (unrepresentable in JSON) write `null`.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string().map_err(|mut e| {
                if self.bytes.get(key_offset) != Some(&b'"') {
                    e.detail = "expected a string object key".into();
                }
                e
            })?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    detail: format!("duplicate object key `{key}`"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8; control characters are
                    // rejected per the JSON grammar).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .expect("input was a &str")
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // Leading zeros are invalid JSON ("01"), a single zero is fine.
        if self.bytes[digits_start] == b'0' && self.pos - digits_start > 1 {
            self.pos = digits_start;
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            detail: format!("invalid number `{text}`"),
        })?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].get("b"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original =
            "quote\" back\\ slash/ tab\t nl\n cr\r bell\u{08} ff\u{0C} unicode é 涛 \u{1F600}";
        let mut out = String::new();
        write_string(&mut out, original);
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            Json::parse(r#""é 😀""#).unwrap().as_str(),
            Some("é \u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_inputs_with_offsets() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "string object key"),
            ("[1, 2", "expected `,` or `]`"),
            ("{\"a\": 1,}", "string object key"),
            ("\"abc", "unterminated string"),
            ("01", "leading zero"),
            ("1.2.3", "trailing characters"),
            ("{\"a\": 1, \"a\": 2}", "duplicate object key `a`"),
            ("nul", "expected `null`"),
            (r#""\q""#, "invalid escape"),
            (r#""\ud800x""#, "lone high surrogate"),
            ("{\"a\" 1}", "expected `:`"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(err.detail.contains(needle), "{text}: {err}");
            assert!(err.to_string().contains("byte"), "{err}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).unwrap_err().detail.contains("nesting"));
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_write_back_without_noise() {
        let mut out = String::new();
        write_number(&mut out, 4000.0);
        assert_eq!(out, "4000");
        out.clear();
        write_number(&mut out, 0.25);
        assert_eq!(out, "0.25");
        out.clear();
        write_number(&mut out, -7.0);
        assert_eq!(out, "-7");
        out.clear();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn pretty_and_compact_round_trip() {
        let mut obj = Json::object();
        obj.push("name", "x");
        obj.push("count", 3u64);
        obj.push("items", vec![Json::from(1u64), Json::from(2u64)]);
        obj.push("empty", Json::object());
        for text in [obj.to_string_compact(), obj.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), obj);
        }
        assert_eq!(
            obj.to_string_compact(),
            r#"{"name":"x","count":3,"items":[1,2],"empty":{}}"#
        );
        assert!(obj.to_string_pretty().ends_with('\n'));
    }

    #[test]
    fn accessor_conversions() {
        let v = Json::parse(r#"{"n": 3, "f": 2.5, "neg": -1, "b": true, "s": "t"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        // 2^64 would saturate through `as u64`; it must be rejected, not
        // clamped to u64::MAX.
        assert_eq!(Json::Num(18_446_744_073_709_551_616.0).as_u64(), None);
        assert_eq!(
            Json::Num(18_446_744_073_709_549_568.0).as_u64(),
            Some(18_446_744_073_709_549_568)
        );
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("missing"), None);
        assert!(v.entries().unwrap().len() == 5);
    }
}
