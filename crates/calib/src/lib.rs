//! Simulator-in-the-loop calibration for the MCCM analytical model.
//!
//! The analytical lanes evaluate ~10⁵ designs per minute; the
//! event-driven simulator referees one design in tens of milliseconds.
//! This crate closes the loop between them:
//!
//! 1. **Promotion** ([`promote_top_k`]) — a deterministic top-K slice of
//!    an optimized Pareto front (per-metric extremes + crowding-spread
//!    fill) earns simulator runs.
//! 2. **Measurement** ([`simulate`], [`metric_pairs`]) — each promoted
//!    design is run through the cancellable simulator, producing one
//!    (analytical, simulated) pair per Table IV metric.
//! 3. **Store** ([`CalibStore`]) — pairs persist in a deterministic,
//!    insertion-ordered, bounded JSON store keyed by `(board, precision,
//!    metric)`, with idempotent merge semantics.
//! 4. **Fit** ([`Correction`]) — per-key least-squares linear
//!    corrections turn raw analytical predictions into calibrated ones
//!    with ± residual error bars.
//!
//! Calibration is *additive envelope data*: it never mutates an
//! analytical result, it annotates it. Consumers (the facade's
//! `calibrate` action, `mccm serve stats`, the bench harness) attach the
//! calibrated predictions next to the raw ones, so the uncalibrated
//! path stays byte-identical.
//!
//! ```
//! use mccm_calib::{CalibStore, Correction, fit_corrections};
//! use mccm_core::Metric;
//!
//! let mut store = CalibStore::new();
//! // Two designs measured on one platform (normally via `metric_pairs`).
//! store.record("zc706", "w8a8", "mobilenetv2", 1, "{L1-L20: CE1}",
//!              &[(Metric::Latency, 0.010, 0.0112)]);
//! store.record("zc706", "w8a8", "mobilenetv2", 1, "{L1-L20: CE2}",
//!              &[(Metric::Latency, 0.020, 0.0221)]);
//! let fits = fit_corrections(&store, "zc706", "w8a8", &[Metric::Latency]);
//! let (metric, correction) = fits[0];
//! assert_eq!(metric, Metric::Latency);
//! // The calibrated prediction lands on the simulator's trend line.
//! assert!((correction.apply(0.015) - 0.01665).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod fit;
mod measure;
mod promote;
mod store;

pub use fit::{fit_corrections, Correction};
pub use measure::{metric_pairs, sim_result_json, simulate, CALIBRATED_METRICS};
pub use promote::promote_top_k;
pub use store::{
    metric_token, CalibError, CalibStore, Pair, StoreKey, DEFAULT_MAX_PAIRS_PER_KEY, STORE_VERSION,
};
