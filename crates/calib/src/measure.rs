//! Running promoted designs through the simulator and extracting
//! calibration pairs.

use mccm_arch::BuiltAccelerator;
use mccm_core::{CancelToken, Evaluation, Metric};
use mccm_json::Json;
use mccm_sim::{SimConfig, SimResult, Simulator};

/// The metrics the simulator can referee, in the paper's Table IV order.
/// Energy is analytical-only and never calibrated.
pub const CALIBRATED_METRICS: [Metric; 4] = [
    Metric::Latency,
    Metric::Throughput,
    Metric::OnChipBuffers,
    Metric::OffChipAccesses,
];

/// Simulates one built accelerator under `config`, honoring `cancel`.
/// Returns `None` if the token fired mid-run (the caller reports a
/// degraded partial with the pairs it already has).
pub fn simulate(
    acc: &BuiltAccelerator,
    eval: &Evaluation,
    config: SimConfig,
    cancel: &CancelToken,
) -> Option<SimResult> {
    Simulator::new(config).run_with_eval_cancellable(acc, eval, cancel)
}

/// (metric, analytical, simulated) triples of one design's measurement,
/// in [`CALIBRATED_METRICS`] order.
pub fn metric_pairs(eval: &Evaluation, sim: &SimResult) -> Vec<(Metric, f64, f64)> {
    sim.accuracy_records(eval)
        .into_iter()
        .map(|r| (r.metric, r.estimated, r.reference))
        .collect()
}

/// Deterministic JSON form of a [`SimResult`] — the byte-level identity
/// the simulator-determinism regression test and pair provenance rest
/// on. Field order is fixed; no wall-clock data appears.
pub fn sim_result_json(sim: &SimResult) -> Json {
    let mut j = Json::object();
    j.push("latency_s", sim.latency_s);
    j.push("throughput_fps", sim.throughput_fps);
    j.push("offchip_bytes", sim.offchip_bytes);
    j.push("offchip_weight_bytes", sim.offchip_weight_bytes);
    j.push("offchip_fm_bytes", sim.offchip_fm_bytes);
    j.push("implemented_buffer_bytes", sim.implemented_buffer_bytes);
    let windows: Vec<Json> = sim
        .segment_windows
        .iter()
        .map(|&(a, b)| Json::Array(vec![Json::Num(a), Json::Num(b)]))
        .collect();
    j.push("segment_windows", windows);
    j.push("dma_utilization", sim.dma_utilization);
    j.push("events", sim.events);
    j.push("images", sim.images);
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_arch::{templates, MultipleCeBuilder};
    use mccm_cnn::zoo;
    use mccm_core::CostModel;
    use mccm_fpga::FpgaBoard;

    #[test]
    fn pairs_cover_the_calibrated_metrics() {
        let model = zoo::mobilenet_v2();
        let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
        let acc = builder
            .build(&templates::hybrid(&model, 3).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let sim = simulate(&acc, &eval, SimConfig::default(), &CancelToken::new()).unwrap();
        let pairs = metric_pairs(&eval, &sim);
        let metrics: Vec<Metric> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(metrics, CALIBRATED_METRICS.to_vec());
        // Off-chip traffic is architecturally deterministic: the pair is
        // exact, anchoring the fit.
        let access = pairs
            .iter()
            .find(|p| p.0 == Metric::OffChipAccesses)
            .unwrap();
        assert_eq!(access.1, access.2);
    }

    #[test]
    fn cancelled_simulation_returns_none() {
        let model = zoo::mobilenet_v2();
        let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
        let acc = builder
            .build(&templates::hybrid(&model, 3).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(simulate(&acc, &eval, SimConfig::default(), &cancel).is_none());
    }

    #[test]
    fn sim_result_json_is_byte_stable() {
        let model = zoo::mobilenet_v2();
        let builder = MultipleCeBuilder::new(&model, &FpgaBoard::zc706());
        let acc = builder
            .build(&templates::hybrid(&model, 3).unwrap())
            .unwrap();
        let eval = CostModel::evaluate(&acc);
        let cancel = CancelToken::new();
        let a = simulate(&acc, &eval, SimConfig::default(), &cancel).unwrap();
        let b = simulate(&acc, &eval, SimConfig::default(), &cancel).unwrap();
        assert_eq!(
            sim_result_json(&a).to_string_compact(),
            sim_result_json(&b).to_string_compact()
        );
    }
}
