//! The persistent calibration store: (analytical, simulated) pairs keyed
//! by `(board, precision, metric)`.
//!
//! The store is the durable half of the calibration loop. Every promoted
//! design that survives a simulator run contributes one [`Pair`] per
//! calibrated metric; the store accumulates them across sessions so
//! corrections sharpen as evidence accumulates. Design points:
//!
//! * **Deterministic bytes.** Serialization is compact [`Json`] with
//!   insertion-ordered keys and pairs and *no wall-clock fields*, so the
//!   same pairs always produce the same file — the CI fixed-point check
//!   (`merge` of a store into itself changes nothing) rests on this.
//! * **Idempotent merge.** A pair's identity is its measurement site
//!   `(model, batch, design)` within its key; re-inserting an identical
//!   measurement is a no-op, and re-running the same calibration against
//!   the same store leaves the file byte-identical.
//! * **Bounded.** Each key holds at most `max_pairs_per_key` pairs;
//!   inserting into a full key evicts the oldest pair (FIFO), keeping
//!   store size — and fit cost — bounded without a clock.
//! * **Typed errors.** Loading reports I/O, JSON, and schema faults as
//!   distinct [`CalibError`] variants naming the file.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use mccm_core::Metric;
use mccm_json::{Json, JsonError};

/// Store schema version written to and checked from the file.
pub const STORE_VERSION: u64 = 1;

/// Default bound on pairs retained per `(board, precision, metric)` key.
pub const DEFAULT_MAX_PAIRS_PER_KEY: usize = 256;

/// Identifies one correction population: all pairs measured on the same
/// board at the same precision for the same metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    /// Board name (e.g. `zc706`).
    pub board: String,
    /// Precision token (e.g. `w8a8`).
    pub precision: String,
    /// The calibrated metric.
    pub metric: Metric,
}

/// One (analytical, simulated) measurement of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// CNN model name the design was built for.
    pub model: String,
    /// Batch size of the evaluation.
    pub batch: usize,
    /// Accelerator notation identifying the design.
    pub design: String,
    /// The analytical model's prediction.
    pub analytical: f64,
    /// The simulator's measurement.
    pub simulated: f64,
}

impl Pair {
    /// Whether `other` measures the same site (same model, batch, and
    /// design) — the dedup identity inside a key.
    pub fn same_site(&self, other: &Pair) -> bool {
        self.model == other.model && self.batch == other.batch && self.design == other.design
    }
}

/// Error loading, parsing, or saving a calibration store.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibError {
    /// The file could not be read or written.
    Io {
        /// Store path.
        path: String,
        /// OS error text.
        detail: String,
    },
    /// The file is not valid JSON.
    Json {
        /// Store path.
        path: String,
        /// Parse error with byte offset.
        error: JsonError,
    },
    /// The JSON is well-formed but not a calibration store.
    Format {
        /// Store path.
        path: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "calibration store `{path}`: {detail}"),
            Self::Json { path, error } => write!(f, "calibration store `{path}`: {error}"),
            Self::Format { path, detail } => {
                write!(f, "calibration store `{path}`: {detail}")
            }
        }
    }
}

impl Error for CalibError {}

/// Serialization token of a metric inside the store file (parsed back by
/// [`Metric::by_name`]).
pub fn metric_token(metric: Metric) -> &'static str {
    match metric {
        Metric::Latency => "latency",
        Metric::Throughput => "throughput",
        Metric::OnChipBuffers => "buffers",
        Metric::OffChipAccesses => "access",
        Metric::Energy => "energy",
    }
}

/// Insertion-ordered, bounded collection of calibration pairs (see the
/// module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CalibStore {
    max_pairs_per_key: usize,
    entries: Vec<(StoreKey, Vec<Pair>)>,
}

impl Default for CalibStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CalibStore {
    /// An empty store with the default per-key bound.
    pub fn new() -> Self {
        Self::with_max_pairs(DEFAULT_MAX_PAIRS_PER_KEY)
    }

    /// An empty store retaining at most `max_pairs_per_key` pairs per key
    /// (clamped to ≥ 1).
    pub fn with_max_pairs(max_pairs_per_key: usize) -> Self {
        Self {
            max_pairs_per_key: max_pairs_per_key.max(1),
            entries: Vec::new(),
        }
    }

    /// The per-key pair bound.
    pub fn max_pairs_per_key(&self) -> usize {
        self.max_pairs_per_key
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Total pairs across all keys.
    pub fn pair_count(&self) -> usize {
        self.entries.iter().map(|(_, pairs)| pairs.len()).sum()
    }

    /// Whether the store holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pair_count() == 0
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &StoreKey> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Pairs under `key`, in insertion order.
    pub fn pairs(&self, key: &StoreKey) -> &[Pair] {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, pairs)| pairs.as_slice())
            .unwrap_or(&[])
    }

    /// Pairs for a `(board, precision, metric)` triple.
    pub fn pairs_for(&self, board: &str, precision: &str, metric: Metric) -> &[Pair] {
        self.pairs(&StoreKey {
            board: board.to_string(),
            precision: precision.to_string(),
            metric,
        })
    }

    /// Inserts one pair, returning whether the store changed.
    ///
    /// A pair for an already-measured site with identical values is a
    /// no-op (the idempotence `merge` relies on); with different values
    /// it replaces the stale measurement in place. A new site appends,
    /// evicting the oldest pair if the key is at its bound.
    pub fn insert(&mut self, key: StoreKey, pair: Pair) -> bool {
        let max = self.max_pairs_per_key;
        let idx = match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.entries.push((key, Vec::new()));
                self.entries.len() - 1
            }
        };
        let pairs = &mut self.entries[idx].1;
        if let Some(existing) = pairs.iter_mut().find(|p| p.same_site(&pair)) {
            if *existing == pair {
                return false;
            }
            *existing = pair;
            return true;
        }
        if pairs.len() >= max {
            pairs.remove(0);
        }
        pairs.push(pair);
        true
    }

    /// Records one design's measurement — `(metric, analytical,
    /// simulated)` triples from [`crate::metric_pairs`] — under the
    /// `(board, precision)` platform, returning how many insertions
    /// changed the store.
    pub fn record(
        &mut self,
        board: &str,
        precision: &str,
        model: &str,
        batch: usize,
        design: &str,
        pairs: &[(Metric, f64, f64)],
    ) -> usize {
        let mut changed = 0;
        for &(metric, analytical, simulated) in pairs {
            let key = StoreKey {
                board: board.to_string(),
                precision: precision.to_string(),
                metric,
            };
            let pair = Pair {
                model: model.to_string(),
                batch,
                design: design.to_string(),
                analytical,
                simulated,
            };
            if self.insert(key, pair) {
                changed += 1;
            }
        }
        changed
    }

    /// Merges every pair of `other` into `self` (insertion order),
    /// returning how many insertions changed the store. Merging a store
    /// into an identical one returns 0 and leaves the bytes fixed.
    pub fn merge(&mut self, other: &CalibStore) -> usize {
        let mut changed = 0;
        for (key, pairs) in &other.entries {
            for pair in pairs {
                if self.insert(key.clone(), pair.clone()) {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// The store as a JSON value (insertion-ordered, no wall-clock
    /// fields).
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("version", STORE_VERSION);
        root.push("max_pairs_per_key", self.max_pairs_per_key);
        let mut keys = Vec::new();
        for (key, pairs) in &self.entries {
            let mut k = Json::object();
            k.push("board", key.board.as_str());
            k.push("precision", key.precision.as_str());
            k.push("metric", metric_token(key.metric));
            let mut ps = Vec::new();
            for p in pairs {
                let mut pj = Json::object();
                pj.push("model", p.model.as_str());
                pj.push("batch", p.batch);
                pj.push("design", p.design.as_str());
                pj.push("analytical", p.analytical);
                pj.push("simulated", p.simulated);
                ps.push(pj);
            }
            k.push("pairs", ps);
            keys.push(k);
        }
        root.push("keys", keys);
        root
    }

    /// Serializes to the compact on-disk byte form (deterministic).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Parses a store from a JSON value; `path` labels errors.
    pub fn from_json(json: &Json, path: &str) -> Result<Self, CalibError> {
        let bad = |detail: String| CalibError::Format {
            path: path.to_string(),
            detail,
        };
        let version = json
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing `version`".into()))?;
        if version != STORE_VERSION {
            return Err(bad(format!(
                "unsupported store version {version} (expected {STORE_VERSION})"
            )));
        }
        let max = json
            .get("max_pairs_per_key")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing `max_pairs_per_key`".into()))?;
        let mut store = Self::with_max_pairs(max);
        let keys = json
            .get("keys")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing `keys` array".into()))?;
        for (i, k) in keys.iter().enumerate() {
            let field = |name: &str| {
                k.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(format!("keys[{i}]: missing string `{name}`")))
            };
            let metric_name = field("metric")?;
            let metric = Metric::by_name(&metric_name)
                .ok_or_else(|| bad(format!("keys[{i}]: unknown metric `{metric_name}`")))?;
            let key = StoreKey {
                board: field("board")?,
                precision: field("precision")?,
                metric,
            };
            let pairs = k
                .get("pairs")
                .and_then(Json::as_array)
                .ok_or_else(|| bad(format!("keys[{i}]: missing `pairs` array")))?;
            for (j, p) in pairs.iter().enumerate() {
                let strf = |name: &str| {
                    p.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            bad(format!("keys[{i}].pairs[{j}]: missing string `{name}`"))
                        })
                };
                let numf = |name: &str| {
                    p.get(name).and_then(Json::as_f64).ok_or_else(|| {
                        bad(format!("keys[{i}].pairs[{j}]: missing number `{name}`"))
                    })
                };
                let pair = Pair {
                    model: strf("model")?,
                    batch: p
                        .get("batch")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| bad(format!("keys[{i}].pairs[{j}]: missing `batch`")))?,
                    design: strf("design")?,
                    analytical: numf("analytical")?,
                    simulated: numf("simulated")?,
                };
                store.insert(key.clone(), pair);
            }
        }
        Ok(store)
    }

    /// Parses a store from its serialized text; `path` labels errors.
    pub fn from_json_str(text: &str, path: &str) -> Result<Self, CalibError> {
        let json = Json::parse(text).map_err(|error| CalibError::Json {
            path: path.to_string(),
            error,
        })?;
        Self::from_json(&json, path)
    }

    /// Loads a store from disk.
    ///
    /// # Errors
    ///
    /// [`CalibError`] naming the path for unreadable files, invalid
    /// JSON, or schema mismatches.
    pub fn load(path: &Path) -> Result<Self, CalibError> {
        let text = fs::read_to_string(path).map_err(|e| CalibError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::from_json_str(&text, &path.display().to_string())
    }

    /// Loads a store, treating a missing file as an empty store (the
    /// first run of a fresh store path).
    pub fn load_or_empty(path: &Path) -> Result<Self, CalibError> {
        if path.exists() {
            Self::load(path)
        } else {
            Ok(Self::new())
        }
    }

    /// Writes the store's deterministic byte form to disk.
    ///
    /// # Errors
    ///
    /// [`CalibError::Io`] naming the path.
    pub fn save(&self, path: &Path) -> Result<(), CalibError> {
        fs::write(path, self.to_json_string()).map_err(|e| CalibError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(metric: Metric) -> StoreKey {
        StoreKey {
            board: "zc706".into(),
            precision: "w8a8".into(),
            metric,
        }
    }

    fn pair(design: &str, analytical: f64, simulated: f64) -> Pair {
        Pair {
            model: "mobilenetv2".into(),
            batch: 1,
            design: design.into(),
            analytical,
            simulated,
        }
    }

    #[test]
    fn insert_is_idempotent_per_site() {
        let mut s = CalibStore::new();
        assert!(s.insert(key(Metric::Latency), pair("d1", 1.0, 1.1)));
        assert!(!s.insert(key(Metric::Latency), pair("d1", 1.0, 1.1)));
        assert_eq!(s.pair_count(), 1);
        // Same site, new values: replaces in place.
        assert!(s.insert(key(Metric::Latency), pair("d1", 1.0, 1.2)));
        assert_eq!(s.pair_count(), 1);
        assert_eq!(s.pairs(&key(Metric::Latency))[0].simulated, 1.2);
    }

    #[test]
    fn bound_evicts_oldest() {
        let mut s = CalibStore::with_max_pairs(2);
        s.insert(key(Metric::Latency), pair("d1", 1.0, 1.1));
        s.insert(key(Metric::Latency), pair("d2", 2.0, 2.1));
        s.insert(key(Metric::Latency), pair("d3", 3.0, 3.1));
        let pairs = s.pairs(&key(Metric::Latency));
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].design, "d2");
        assert_eq!(pairs[1].design, "d3");
    }

    #[test]
    fn merge_into_self_is_fixed_point() {
        let mut s = CalibStore::new();
        s.insert(key(Metric::Latency), pair("d1", 1.0, 1.1));
        s.insert(key(Metric::Throughput), pair("d1", 100.0, 95.0));
        let before = s.to_json_string();
        let twin = s.clone();
        assert_eq!(s.merge(&twin), 0);
        assert_eq!(s.to_json_string(), before);
    }

    #[test]
    fn json_round_trip_preserves_bytes() {
        let mut s = CalibStore::new();
        s.insert(key(Metric::Latency), pair("d1", 0.01, 0.0125));
        s.insert(key(Metric::OnChipBuffers), pair("d1", 1024.0, 4608.0));
        let text = s.to_json_string();
        let back = CalibStore::from_json_str(&text, "test").unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn format_errors_name_the_fault() {
        let err = CalibStore::from_json_str("{\"version\": 9}", "p").unwrap_err();
        match err {
            CalibError::Format { detail, .. } => assert!(detail.contains("version 9")),
            other => panic!("unexpected {other:?}"),
        }
        let err = CalibStore::from_json_str("not json", "p").unwrap_err();
        assert!(matches!(err, CalibError::Json { .. }));
    }
}
