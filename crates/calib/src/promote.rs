//! Deterministic promotion: which Pareto-front members earn a simulator
//! run.
//!
//! Simulation is ~10³× slower than the analytical fast lane, so only a
//! bounded top-K slice of an optimized front is promoted. The policy is
//! a deterministic function of the front:
//!
//! 1. **Per-metric extremes first** — the best member of each objective
//!    (in the configured metric order) anchors each axis of the fit, so
//!    corrections are constrained at the edges of the front where
//!    decisions actually happen.
//! 2. **Crowding-spread fill** — remaining slots go to the member
//!    farthest (max–min normalized Euclidean distance over the metric
//!    space) from everything already selected: farthest-point sampling,
//!    which spreads the evidence instead of clustering it.
//!
//! Ties break on the lower index, and the front itself is already
//! deterministically ordered, so promotion is reproducible across runs
//! and worker counts — a precondition for the calibration store's
//! byte-level idempotence.

use mccm_core::{Metric, MetricSource};

/// Selects up to `k` member indices of `points` to promote (see the
/// module docs for the policy). The returned indices are in selection
/// order: extremes in metric order, then spread fill.
pub fn promote_top_k<S: MetricSource>(points: &[S], metrics: &[Metric], k: usize) -> Vec<usize> {
    let n = points.len();
    let k = k.min(n);
    let mut selected: Vec<usize> = Vec::with_capacity(k);

    // 1. Per-metric extremes.
    for &metric in metrics {
        if selected.len() >= k {
            break;
        }
        let mut best = 0usize;
        for i in 1..n {
            if metric.better(metric.value(&points[i]), metric.value(&points[best])) {
                best = i;
            }
        }
        if n > 0 && !selected.contains(&best) {
            selected.push(best);
        }
    }

    if selected.len() >= k || n == 0 {
        selected.truncate(k);
        return selected;
    }

    // 2. Crowding-spread fill in normalized metric space.
    let norms: Vec<Vec<f64>> = normalized_coords(points, metrics);
    while selected.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if selected.contains(&i) {
                continue;
            }
            let d = selected
                .iter()
                .map(|&s| dist2(&norms[i], &norms[s]))
                .fold(f64::INFINITY, f64::min);
            match best {
                Some((_, bd)) if d <= bd => {}
                _ => best = Some((i, d)),
            }
        }
        match best {
            Some((i, _)) => selected.push(i),
            None => break,
        }
    }
    selected
}

/// Metric values rescaled to `[0, 1]` per metric (constant metrics map
/// to 0), so no single objective's units dominate the spread distance.
fn normalized_coords<S: MetricSource>(points: &[S], metrics: &[Metric]) -> Vec<Vec<f64>> {
    let mut coords: Vec<Vec<f64>> = points
        .iter()
        .map(|p| metrics.iter().map(|m| m.value(p)).collect())
        .collect();
    for (mi, _) in metrics.iter().enumerate() {
        let lo = coords.iter().map(|c| c[mi]).fold(f64::INFINITY, f64::min);
        let hi = coords
            .iter()
            .map(|c| c[mi])
            .fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        for c in &mut coords {
            c[mi] = if span > 0.0 { (c[mi] - lo) / span } else { 0.0 };
        }
    }
    coords
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccm_core::Metric;

    /// Minimal metric source for tests: fixed values per metric.
    struct P {
        latency: f64,
        throughput: f64,
    }

    impl MetricSource for P {
        fn metric_value(&self, metric: Metric) -> f64 {
            match metric {
                Metric::Latency => self.latency,
                Metric::Throughput => self.throughput,
                _ => 0.0,
            }
        }
    }

    const METRICS: [Metric; 2] = [Metric::Latency, Metric::Throughput];

    fn p(latency: f64, throughput: f64) -> P {
        P {
            latency,
            throughput,
        }
    }

    #[test]
    fn extremes_come_first() {
        // Index 2 has the best (lowest) latency, index 0 the best
        // (highest) throughput.
        let points = vec![p(5.0, 100.0), p(3.0, 60.0), p(1.0, 20.0), p(4.0, 80.0)];
        let sel = promote_top_k(&points, &METRICS, 3);
        assert_eq!(sel[0], 2);
        assert_eq!(sel[1], 0);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn fill_prefers_spread() {
        // After the extremes (2 and 0), the farthest remaining point in
        // normalized space is 3 (mid-front), not 1 (close to 2).
        let points = vec![p(5.0, 100.0), p(1.2, 22.0), p(1.0, 20.0), p(3.0, 60.0)];
        let sel = promote_top_k(&points, &METRICS, 3);
        assert_eq!(sel, vec![2, 0, 3]);
    }

    #[test]
    fn k_clamps_and_dedups() {
        let points = vec![p(1.0, 99.0)];
        // One point is both extremes; selection holds one index.
        assert_eq!(promote_top_k(&points, &METRICS, 4), vec![0]);
        assert!(promote_top_k::<P>(&[], &METRICS, 4).is_empty());
    }

    #[test]
    fn deterministic_under_repeats() {
        let points: Vec<P> = (0..12)
            .map(|i| p(f64::from(i) + 1.0, 100.0 - f64::from(i) * 3.0))
            .collect();
        let a = promote_top_k(&points, &METRICS, 6);
        let b = promote_top_k(&points, &METRICS, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }
}
