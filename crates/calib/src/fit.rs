//! Least-squares linear corrections fitted from calibration pairs.
//!
//! Each `(board, precision, metric)` key gets its own [`Correction`]
//! `simulated ≈ slope · analytical + intercept`, fitted by ordinary
//! least squares over the key's pairs. A linear map is the right shape
//! here because the simulator's divergence from the analytical model is
//! dominated by *systematic* implementation overheads — per-transfer DMA
//! latency, per-tile control cycles, BRAM bank quantization — that scale
//! near-linearly with the analytical quantity; what remains after the
//! fit (the residuals) is the honest ± error bar the fronts surface.
//!
//! Determinism: the fit is plain `f64` arithmetic accumulated in pair
//! insertion order — no randomness, no iteration-order hazards — so the
//! same store always yields the same correction, bit for bit. Refitting
//! is O(pairs) and is simply re-run whenever pairs accumulate (the store
//! bounds pairs per key, so refits stay cheap).

use mccm_core::Metric;

use crate::store::{CalibStore, Pair};

/// A fitted linear correction for one `(board, precision, metric)` key,
/// with residual statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correction {
    /// Multiplicative term of `calibrated = slope · analytical +
    /// intercept`.
    pub slope: f64,
    /// Additive term.
    pub intercept: f64,
    /// Pairs the fit was computed from.
    pub pairs: usize,
    /// Mean |simulated − calibrated| over the fit pairs — the ± error
    /// bar attached to calibrated predictions.
    pub mean_abs_residual: f64,
    /// Worst |simulated − calibrated| over the fit pairs.
    pub max_abs_residual: f64,
    /// Mean |simulated − analytical| over the fit pairs: the error of
    /// the *raw* analytical prediction, for improvement reporting.
    pub raw_mean_abs_error: f64,
}

impl Correction {
    /// The do-nothing correction (slope 1, intercept 0, no pairs) used
    /// when a key has no evidence yet.
    pub fn identity() -> Self {
        Self {
            slope: 1.0,
            intercept: 0.0,
            pairs: 0,
            mean_abs_residual: 0.0,
            max_abs_residual: 0.0,
            raw_mean_abs_error: 0.0,
        }
    }

    /// Fits `simulated ≈ slope · analytical + intercept` by ordinary
    /// least squares over `pairs`, in slice order.
    ///
    /// Degenerate populations fall back conservatively: no pairs gives
    /// [`Self::identity`]; pairs with (near-)zero analytical variance
    /// keep slope 1 and fit only the mean offset, so a correction never
    /// extrapolates from a direction the evidence does not constrain.
    pub fn fit(pairs: &[Pair]) -> Self {
        if pairs.is_empty() {
            return Self::identity();
        }
        let n = pairs.len();
        let n_f = usize_f64(n);
        let mean_x = pairs.iter().map(|p| p.analytical).sum::<f64>() / n_f;
        let mean_y = pairs.iter().map(|p| p.simulated).sum::<f64>() / n_f;
        let sxx = pairs
            .iter()
            .map(|p| (p.analytical - mean_x) * (p.analytical - mean_x))
            .sum::<f64>();
        let sxy = pairs
            .iter()
            .map(|p| (p.analytical - mean_x) * (p.simulated - mean_y))
            .sum::<f64>();
        // Variance threshold relative to the magnitude of the data: a
        // population of identical (or numerically indistinguishable)
        // analytical values cannot support a slope.
        let scale = mean_x.abs().max(1.0);
        let (slope, intercept) = if sxx <= scale * scale * 1e-18 {
            (1.0, mean_y - mean_x)
        } else {
            let slope = sxy / sxx;
            (slope, mean_y - slope * mean_x)
        };
        let mut sum_res = 0.0;
        let mut max_res = 0.0_f64;
        let mut sum_raw = 0.0;
        for p in pairs {
            let res = (p.simulated - (slope * p.analytical + intercept)).abs();
            sum_res += res;
            max_res = max_res.max(res);
            sum_raw += (p.simulated - p.analytical).abs();
        }
        Self {
            slope,
            intercept,
            pairs: n,
            mean_abs_residual: sum_res / n_f,
            max_abs_residual: max_res,
            raw_mean_abs_error: sum_raw / n_f,
        }
    }

    /// Applies the correction to an analytical prediction.
    pub fn apply(&self, analytical: f64) -> f64 {
        self.slope * analytical + self.intercept
    }

    /// The ± error bar attached to calibrated predictions (mean absolute
    /// residual of the fit).
    pub fn error_bar(&self) -> f64 {
        self.mean_abs_residual
    }

    /// Raw-over-calibrated MAE ratio (> 1 means the correction helps).
    /// Residual-free fits report the raw error against a tiny floor so
    /// the ratio stays finite.
    pub fn improvement(&self) -> f64 {
        if self.pairs == 0 || self.raw_mean_abs_error == 0.0 {
            1.0
        } else {
            self.raw_mean_abs_error / self.mean_abs_residual.max(1e-300)
        }
    }
}

/// Fits one correction per metric from the store's pairs for `(board,
/// precision)`, in the order of `metrics`. Keys with no pairs fit to
/// [`Correction::identity`].
pub fn fit_corrections(
    store: &CalibStore,
    board: &str,
    precision: &str,
    metrics: &[Metric],
) -> Vec<(Metric, Correction)> {
    metrics
        .iter()
        .map(|&m| (m, Correction::fit(store.pairs_for(board, precision, m))))
        .collect()
}

/// Exact `usize → f64` for pair counts (store bounds keep populations
/// far below 2^52, so the conversion is lossless in practice).
#[allow(clippy::cast_precision_loss)]
fn usize_f64(n: usize) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(analytical: f64, simulated: f64) -> Pair {
        Pair {
            model: "m".into(),
            batch: 1,
            design: format!("d{analytical}"),
            analytical,
            simulated,
        }
    }

    #[test]
    fn exact_linear_data_fits_exactly() {
        let pairs: Vec<Pair> = [1.0, 2.0, 5.0, 9.0]
            .iter()
            .map(|&x| pair(x, 1.5 * x + 0.25))
            .collect();
        let c = Correction::fit(&pairs);
        assert!((c.slope - 1.5).abs() < 1e-12);
        assert!((c.intercept - 0.25).abs() < 1e-12);
        assert!(c.mean_abs_residual < 1e-12);
        assert!(c.raw_mean_abs_error > 0.1);
        assert!(c.improvement() > 2.0);
    }

    #[test]
    fn degenerate_variance_fits_offset_only() {
        let pairs = vec![pair(4.0, 5.0), pair(4.0, 5.2)];
        let c = Correction::fit(&pairs);
        assert_eq!(c.slope, 1.0);
        assert!((c.intercept - 1.1).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_identity() {
        let c = Correction::fit(&[]);
        assert_eq!(c, Correction::identity());
        assert_eq!(c.apply(3.0), 3.0);
    }

    #[test]
    fn fit_is_deterministic() {
        let pairs: Vec<Pair> = (0..20)
            .map(|i| {
                let x = f64::from(i) * 0.37 + 1.0;
                pair(x, 1.2 * x + 0.05 + if i % 2 == 0 { 0.01 } else { -0.01 })
            })
            .collect();
        let a = Correction::fit(&pairs);
        let b = Correction::fit(&pairs);
        assert_eq!(a, b);
    }
}
